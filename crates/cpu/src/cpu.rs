//! The fetch/decode/execute core.

use crate::ops::{self, CpuPorts, RefPorts};
use crate::oracle::{self, Divergence, LockstepState};
use crate::region::{DecodedInstr, DecodedRegion};
use crate::template::{self, TOp, TTerm, Template, TmplState};
use crate::{DerivationTrace, RegFile};
use cheri_cap::{CapFault, Capability, Perms};
use cheri_isa::Instr;
use cheri_mem::{AccessKind, CacheHierarchy, MemEventRing, MemEventSink, FRAME_SIZE};
use cheri_sem::{SemExit, StepCtx};
use cheri_vm::{Access, AsId, Vm, VmError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why execution stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Exit {
    /// The guest executed `syscall`; `pc` already points at the next
    /// instruction, the syscall number is in `$v0`.
    Syscall,
    /// The guest executed `break` (abort / sanitizer trap).
    Break,
    /// A trap: capability fault, VM fault, or fetch error. `pc` still
    /// points at the faulting instruction.
    Trap(TrapInfo),
    /// The instruction budget given to [`Cpu::run`] was exhausted.
    InstrLimit,
}

/// Details of a trap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapInfo {
    /// Cause classification.
    pub cause: TrapCause,
    /// Faulting instruction address.
    pub pc: u64,
    /// Data address involved, if any.
    pub vaddr: Option<u64>,
}

/// Trap cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapCause {
    /// A capability check failed (the CHERI exception vector).
    Cap(CapFault),
    /// A virtual-memory fault the kernel could not transparently service.
    Vm(VmError),
    /// PC does not fall within any registered code region.
    NoCode,
}

/// Retired-instruction and cycle counters (the Figure 4 metrics), plus
/// host-side fast-path efficacy counters.
///
/// Equality compares **guest-visible** fields only (`instret`, `cycles`,
/// `syscalls`): the TLB and superblock counters describe how the simulator
/// got there, differ legitimately between the superblock and
/// `--no-fast-path` modes, and must never participate in the
/// metric-equivalence gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles consumed (pipeline base + memory stalls + runtime charges).
    pub cycles: u64,
    /// `syscall` instructions retired.
    pub syscalls: u64,
    /// Host-side: translations served from the TLB.
    pub tlb_hits: u64,
    /// Host-side: translations that took the full VM walk.
    pub tlb_misses: u64,
    /// Host-side: fetches/block entries served by the resident region.
    pub sb_hits: u64,
    /// Host-side: fetches/block entries that re-scanned the region map.
    pub sb_misses: u64,
    /// Host-side: superblocks promoted to a compiled trace template.
    pub tmpl_compiles: u64,
    /// Host-side: template executions (each may run many loop
    /// iterations).
    pub tmpl_hits: u64,
}

impl PartialEq for CpuStats {
    fn eq(&self, other: &CpuStats) -> bool {
        (self.instret, self.cycles, self.syscalls) == (other.instret, other.cycles, other.syscalls)
    }
}

impl Eq for CpuStats {}

/// Direct-mapped TLB geometry: sets per access kind. Must be a power of
/// two — the set index is `vpn & (TLB_SETS - 1)`.
const TLB_SETS: usize = 256;
/// Read / Write / Exec each get their own way so that a page readable and
/// executable at different physical rights never aliases.
const TLB_KINDS: usize = 3;
/// Sentinel VPN marking an empty TLB slot (no user VPN reaches it:
/// user addresses top out well below `u64::MAX * FRAME_SIZE`).
const TLB_INVALID_VPN: u64 = u64::MAX;

/// One direct-mapped TLB slot: the virtual page number it holds a
/// translation for and the physical frame base it maps to.
#[derive(Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    base: u64,
}

/// Superblock re-entry cache geometry: direct-mapped on the block-entry
/// pc. Must be a power of two. A loop body usually spans a handful of
/// blocks (its header plus one per conditional), so a small table already
/// captures the re-entry pattern a single slot would thrash on.
const SB_SLOTS: usize = 32;

/// Cached block-entry state for re-entering the same superblock: a hot
/// loop re-executes its body blocks millions of times, and without this
/// the per-entry PCC check, translation and clamp arithmetic dominate
/// tiny blocks. Valid only while the VM translation epoch and the exact
/// PCC still match — the same monotone-epoch argument that makes the TLB
/// sound — and dropped wholesale whenever the region map or execution
/// context changes.
#[derive(Clone)]
struct SbEntry {
    /// Virtual address the block was entered at.
    pc: u64,
    /// Its translation under `epoch`.
    pa: u64,
    /// Instruction index of `pc` within `region`.
    idx: usize,
    /// Budget-independent run length: already clamped to the block end,
    /// the page boundary and the PCC top (but *not* `max(1)`-floored —
    /// the executor applies the budget clamp and the floor itself).
    n: usize,
    /// The exact PCC the entry checks passed under.
    pcc: Capability,
    /// VM translation epoch the entry was computed under.
    epoch: u64,
    /// The region containing `pc`.
    region: Arc<DecodedRegion>,
    /// Template-tier promotion state. Lives inside the entry, so every
    /// demotion path is free: a guard miss (epoch bump from COW, swap,
    /// mprotect or fork; PCC change; slot reuse) rebuilds the entry and
    /// the state resets to cold with it.
    tmpl: TmplState,
}

/// The simulated core: caches, counters, registered code regions, and a
/// direct-mapped TLB that self-invalidates by comparing the VM's
/// translation epoch (no kernel flush calls required).
pub struct Cpu {
    /// Cache hierarchy (shared by fetch and data sides, as on the FPGA).
    pub caches: CacheHierarchy,
    /// Performance counters.
    pub stats: CpuStats,
    /// Derivation tracing for Figure 5.
    pub trace: DerivationTrace,
    code: HashMap<AsId, Vec<Arc<DecodedRegion>>>,
    cur_as: Option<AsId>,
    /// Direct-mapped translation cache, `TLB_KINDS * TLB_SETS` slots.
    /// Valid only while `seen_epoch == vm.epoch()` and the context is
    /// `cur_as`; reset wholesale otherwise.
    tlb: Vec<TlbEntry>,
    /// The [`cheri_vm::Vm::epoch`] value the TLB contents were filled
    /// under.
    seen_epoch: u64,
    /// The code region the last fetch hit: straight-line fetch and branch
    /// target resolution stay inside it without touching the region map.
    cur_code: Option<Arc<DecodedRegion>>,
    /// Re-entry cache for recently entered superblocks, direct-mapped on
    /// the entry pc ([`SB_SLOTS`] slots): loops re-enter the same blocks
    /// at the same PCC under the same epoch, so the entry checks and
    /// clamps need computing once, not per iteration.
    sb_entries: Vec<Option<SbEntry>>,
    /// When false, every fetch/load/store takes the full `vm.translate`
    /// and region-scan path — the measurement baseline for
    /// `interp_throughput --no-fast-path`. Guest-visible state and all
    /// counters are identical either way.
    fast_path: bool,
    /// When false, the superblock loop is skipped even with the fast path
    /// on: the TLB-only ablation point.
    superblocks: bool,
    /// When false, hot superblocks are never promoted to trace
    /// templates: the `--exec-mode superblock` ablation point. Only
    /// meaningful with the fast path and superblocks on.
    templates: bool,
    /// Effective template activation for the current `run`: requires
    /// batched superblock mode and no armed lockstep oracle (the shadow
    /// needs per-instruction boundaries templates fold away).
    tmpl_active: bool,
    /// Test-only residency weakening (`--weaken-flush`): the first
    /// template execution skips its exit write-set flush, silently
    /// dropping every register the trace computed. One-shot, so the
    /// guest still terminates; exists solely so the cross-tier
    /// determinism gates can prove they catch a residency bug.
    weaken_flush: bool,
    /// Whether the one-shot weakened flush already fired.
    flush_weakened: bool,
    /// Forces every memory event straight into the cache model (no ring
    /// batching) and single-step execution. Armed fault plans set this so
    /// ordering-sensitive triggers always observe an up-to-date model.
    exact_events: bool,
    /// Test-only semantic weakening (`--weaken-sem`): when set,
    /// `csetbounds` (register form) skips its monotonicity check. Exists
    /// solely so the oracle self-test can prove divergences are detected.
    weaken_sem: bool,
    /// When set, `run` takes the reference interpreter instead of the
    /// superblock machine: per-step fetch through the full VM walk, exact
    /// cache accounting, direct semantics dispatch — no TLB, no resident
    /// region, no re-entry cache, no event batching. Guest-visible
    /// behaviour is identical by construction; only speed differs.
    reference: bool,
    /// Armed lockstep oracle, if any (see [`crate::oracle`]).
    lockstep: Option<LockstepState>,
    /// Effective mode for the current `run`: batch events and execute by
    /// superblock. Recomputed at every `run` entry from the three flags
    /// and `trace.enabled`.
    batch: bool,
    /// Pending memory events awaiting a batched drain.
    events: MemEventRing,
}

/// Converts a semantics-level exit into the machine-level [`Exit`].
fn sem_exit(e: SemExit) -> Exit {
    match e {
        SemExit::Syscall => Exit::Syscall,
        SemExit::Break => Exit::Break,
    }
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cpu{{{:?}}}", self.stats)
    }
}

type StepResult = Result<Option<Exit>, TrapInfo>;

impl Cpu {
    /// A fresh core with the paper's FPGA cache geometry.
    #[must_use]
    pub fn new() -> Cpu {
        Cpu {
            caches: CacheHierarchy::fpga_default(),
            stats: CpuStats::default(),
            trace: DerivationTrace::new(),
            code: HashMap::new(),
            cur_as: None,
            tlb: vec![
                TlbEntry {
                    vpn: TLB_INVALID_VPN,
                    base: 0,
                };
                TLB_KINDS * TLB_SETS
            ],
            seen_epoch: 0,
            cur_code: None,
            sb_entries: vec![None; SB_SLOTS],
            fast_path: true,
            superblocks: true,
            templates: true,
            tmpl_active: false,
            weaken_flush: false,
            flush_weakened: false,
            exact_events: false,
            weaken_sem: false,
            reference: false,
            lockstep: None,
            batch: false,
            events: MemEventRing::new(),
        }
    }

    /// Enables or disables the translation/fetch fast path. Disabling it
    /// forces every access through the full VM walk and region scan —
    /// useful only as a performance baseline; guest-visible behaviour is
    /// identical in both modes.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        self.reset_tlb();
    }

    /// Whether the translation/fetch fast path is enabled.
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables superblock execution (the TLB-only ablation
    /// point when disabled). Guest-visible behaviour is identical in both
    /// modes.
    pub fn set_superblocks(&mut self, on: bool) {
        self.superblocks = on;
        self.cur_code = None;
        self.reset_sb_entries();
    }

    /// Whether superblock execution is enabled.
    #[must_use]
    pub fn superblocks(&self) -> bool {
        self.superblocks
    }

    /// Enables or disables the template tier (promotion of hot
    /// superblocks to compiled trace templates — the superblock-only
    /// ablation point when disabled). Guest-visible behaviour is
    /// identical in both modes. Disabling discards every compiled
    /// template by dropping the re-entry cache.
    pub fn set_templates(&mut self, on: bool) {
        self.templates = on;
        self.reset_sb_entries();
    }

    /// Whether template promotion is enabled.
    #[must_use]
    pub fn templates(&self) -> bool {
        self.templates
    }

    /// Enables the test-only deliberate residency bug (`--weaken-flush`):
    /// the first template execution skips its exit write-set flush. The
    /// guest's register file silently loses everything the trace
    /// computed, so guest metrics and outcomes diverge from the other
    /// tiers — which the cross-tier determinism gates must catch. The
    /// self-test that proves the gates actually cover register
    /// residency.
    pub fn set_weaken_flush(&mut self, on: bool) {
        self.weaken_flush = on;
        self.flush_weakened = false;
    }

    /// Whether the test-only flush weakening is active.
    #[must_use]
    pub fn weaken_flush(&self) -> bool {
        self.weaken_flush
    }

    /// Forces exact memory-event replay (no ring batching) and single-step
    /// execution. Fault-plan arming sets this so ordering-sensitive
    /// trigger points always observe an up-to-date cache model.
    pub fn set_exact_mem_events(&mut self, on: bool) {
        self.exact_events = on;
    }

    /// Whether exact memory-event replay is forced.
    #[must_use]
    pub fn exact_mem_events(&self) -> bool {
        self.exact_events
    }

    /// Enables the test-only deliberate semantics bug (`--weaken-sem`):
    /// `csetbounds` (register form) skips its monotonicity check, so a
    /// derived capability can widen. The lockstep shadow never weakens,
    /// so the oracle must report a divergence — the self-test that proves
    /// the oracle plane actually detects semantic drift.
    pub fn set_weaken_sem(&mut self, on: bool) {
        self.weaken_sem = on;
    }

    /// Whether the test-only semantics weakening is active.
    #[must_use]
    pub fn weaken_sem(&self) -> bool {
        self.weaken_sem
    }

    /// Switches the core to the reference interpreter (see the `reference`
    /// field): the deliberately simple second consumer of the shared step
    /// semantics, used as the `--oracle replay` baseline.
    pub fn set_reference(&mut self, on: bool) {
        self.reference = on;
        self.reset_tlb();
    }

    /// Whether the reference interpreter is active.
    #[must_use]
    pub fn reference(&self) -> bool {
        self.reference
    }

    /// Arms the lockstep oracle: every `every`-th dispatched instruction —
    /// and every trap/exit boundary — is re-executed by a side-effect-free
    /// shadow interpreter and the full architectural state compared.
    /// `verify_stores` additionally checks what stores left in memory;
    /// disable it when a fault plan is armed (injected corruption is
    /// deliberately non-architectural).
    pub fn set_lockstep(&mut self, every: u64, verify_stores: bool) {
        let every = every.max(1);
        self.lockstep = Some(LockstepState {
            every,
            countdown: every,
            verify_stores,
            divergence: None,
        });
    }

    /// Disarms the lockstep oracle, discarding any recorded divergence.
    pub fn clear_lockstep(&mut self) {
        self.lockstep = None;
    }

    /// Takes the first divergence the lockstep oracle observed, if any.
    pub fn take_divergence(&mut self) -> Option<Divergence> {
        self.lockstep.as_mut().and_then(|l| l.divergence.take())
    }

    /// Invalidates every TLB slot, the resident code block and the
    /// superblock re-entry cache.
    fn reset_tlb(&mut self) {
        for e in &mut self.tlb {
            e.vpn = TLB_INVALID_VPN;
        }
        self.cur_code = None;
        self.reset_sb_entries();
    }

    /// Invalidates the superblock re-entry cache.
    fn reset_sb_entries(&mut self) {
        for e in &mut self.sb_entries {
            *e = None;
        }
    }

    /// Re-entry cache slot for a block-entry pc (instructions are 4-byte
    /// aligned, so the index uses `pc >> 2`).
    #[inline]
    fn sb_slot(pc: u64) -> usize {
        (pc >> 2) as usize & (SB_SLOTS - 1)
    }

    /// Registers a pre-decoded, immutable code region (done by the loader
    /// / RTLD when mapping an object's text segment). The region is shared
    /// by reference: registration, fork and residency never copy it.
    pub fn register_region(&mut self, id: AsId, region: Arc<DecodedRegion>) {
        self.code.entry(id).or_default().push(region);
        self.cur_code = None;
        self.reset_sb_entries();
    }

    /// Decodes and registers a code region in one step. Convenience
    /// wrapper over [`DecodedRegion::decode`] + [`Cpu::register_region`]
    /// for callers that don't retain the decoded form.
    pub fn register_code(&mut self, id: AsId, start: u64, code: Arc<Vec<Instr>>) {
        self.register_region(id, DecodedRegion::decode(start, &code));
    }

    /// Forgets all code regions of an address space (process teardown).
    pub fn clear_code(&mut self, id: AsId) {
        self.code.remove(&id);
        self.cur_code = None;
        self.reset_sb_entries();
    }

    /// Copies the code map of `from` to `to` (fork: the child shares the
    /// parent's text mappings). Regions are immutable and `Arc`-shared, so
    /// this bumps reference counts instead of cloning instruction vectors.
    pub fn clone_code(&mut self, from: AsId, to: AsId) {
        if let Some(regions) = self.code.get(&from) {
            let shared = regions.clone();
            self.code.insert(to, shared);
            self.cur_code = None;
            self.reset_sb_entries();
        }
    }

    /// Drops every cached translation and the resident code block.
    ///
    /// Kernel code no longer needs to call this: mapping changes bump the
    /// VM's translation epoch and the Cpu self-invalidates by comparing
    /// epochs on the next access. It remains public for tests and tools
    /// that want a cold-cache starting point.
    pub fn flush_tlb(&mut self) {
        self.reset_tlb();
    }

    /// Charges the cost of work performed by a trusted runtime service on
    /// behalf of the guest (allocator internals, RTLD, kernel copies).
    pub fn charge(&mut self, instrs: u64, cycles: u64) {
        self.stats.instret += instrs;
        self.stats.cycles += cycles;
    }

    fn set_context(&mut self, id: AsId) {
        if self.cur_as != Some(id) {
            self.cur_as = Some(id);
            self.reset_tlb();
        }
    }

    /// TLB slot index for a (access kind, virtual page number) pair.
    #[inline]
    fn tlb_index(access: Access, vpn: u64) -> usize {
        access as usize * TLB_SETS + (vpn as usize & (TLB_SETS - 1))
    }

    pub(crate) fn translate_cached(
        &mut self,
        vm: &mut Vm,
        id: AsId,
        vaddr: u64,
        access: Access,
        pc: u64,
    ) -> Result<u64, TrapInfo> {
        if !self.fast_path {
            let pa = vm.translate(id, vaddr, access).map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })?;
            return Ok(pa.0);
        }
        // Self-invalidate: any mapping mutation since the TLB was filled
        // shows up as an epoch mismatch.
        let epoch = vm.epoch();
        if epoch != self.seen_epoch {
            self.reset_tlb();
            self.seen_epoch = epoch;
        }
        let vpn = vaddr / FRAME_SIZE;
        let idx = Self::tlb_index(access, vpn);
        let e = self.tlb[idx];
        if e.vpn == vpn {
            self.stats.tlb_hits += 1;
            return Ok(e.base + vaddr % FRAME_SIZE);
        }
        self.stats.tlb_misses += 1;
        let pa = vm.translate(id, vaddr, access).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc,
            vaddr: Some(vaddr),
        })?;
        // The translation itself may have bumped the epoch (COW resolution,
        // swap-in): re-check before caching, or the fill would survive an
        // invalidation it was itself the cause of.
        let now = vm.epoch();
        if now != self.seen_epoch {
            self.reset_tlb();
            self.seen_epoch = now;
        }
        self.tlb[idx] = TlbEntry {
            vpn,
            base: pa.0 - pa.0 % FRAME_SIZE,
        };
        Ok(pa.0)
    }

    // ------------------------------------------------------------------
    // Memory-event sink
    // ------------------------------------------------------------------

    /// Records one physical memory access in program order. In batched
    /// mode the event joins the pending ring (drained at superblock
    /// boundaries, or here when full); otherwise it is replayed into the
    /// cache model immediately — the exact-mode reference semantics.
    #[inline]
    pub(crate) fn mem_access(&mut self, pa: u64, kind: AccessKind) {
        if self.batch {
            if self.events.is_full() {
                self.stats.cycles += self.caches.drain(&mut self.events);
            }
            self.events.record(pa, kind);
        } else {
            self.stats.cycles += self.caches.access(pa, kind);
        }
    }

    /// Replays every pending event into the cache model and charges the
    /// resulting stall cycles. Called at every `run` exit, so syscalls,
    /// traps and instruction-limit returns always observe model state and
    /// cycle counts identical to exact mode.
    fn drain_events(&mut self) {
        if !self.events.is_empty() {
            self.stats.cycles += self.caches.drain(&mut self.events);
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    /// Scans the region map for the region containing `pc`.
    fn find_region(&self, id: AsId, pc: u64) -> Option<Arc<DecodedRegion>> {
        self.code
            .get(&id)?
            .iter()
            .find(|r| r.contains(pc))
            .map(Arc::clone)
    }

    fn fetch(
        &mut self,
        vm: &mut Vm,
        id: AsId,
        rf: &RegFile,
    ) -> Result<(DecodedInstr, u64), TrapInfo> {
        let pc = rf.pc;
        rf.pcc
            .check_access(pc, 4, Perms::EXECUTE)
            .map_err(|f| TrapInfo {
                cause: TrapCause::Cap(f),
                pc,
                vaddr: Some(pc),
            })?;
        let pa = self.translate_cached(vm, id, pc, Access::Exec, pc)?;
        self.mem_access(pa, AccessKind::Fetch);
        // Straight-line execution stays inside one region: serve it from
        // the resident block without touching the region map.
        if self.fast_path {
            if let Some(r) = &self.cur_code {
                if r.contains(pc) {
                    self.stats.sb_hits += 1;
                    return Ok((r.instr_at(r.index_of(pc)), r.start()));
                }
            }
        }
        self.stats.sb_misses += 1;
        let region = self.find_region(id, pc).ok_or(TrapInfo {
            cause: TrapCause::NoCode,
            pc,
            vaddr: Some(pc),
        })?;
        let di = region.instr_at(region.index_of(pc));
        let rstart = region.start();
        if self.fast_path {
            self.cur_code = Some(region);
        }
        Ok((di, rstart))
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs until a syscall, break, trap, or `max_instrs` retired
    /// instructions.
    ///
    /// Execution mode is chosen here: superblock batching when the fast
    /// path and superblocks are enabled and neither tracing nor exact
    /// event replay demands per-instruction fidelity; the single-step
    /// path otherwise. Pending memory events are always drained before
    /// returning, so the caller observes cycle counts, cache statistics
    /// and model state identical to exact mode at every exit — syscall,
    /// trap, break or instruction limit.
    pub fn run(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile, max_instrs: u64) -> Exit {
        self.set_context(id);
        if self.reference {
            return self.run_reference(vm, id, rf, max_instrs);
        }
        self.batch =
            self.fast_path && self.superblocks && !self.trace.enabled && !self.exact_events;
        // Templates additionally require no armed lockstep oracle: the
        // shadow re-executes at per-instruction boundaries, which the
        // template deliberately folds away.
        self.tmpl_active = self.batch && self.templates && self.lockstep.is_none();
        let exit = self.run_inner(vm, id, rf, max_instrs);
        self.drain_events();
        self.batch = false;
        self.tmpl_active = false;
        exit
    }

    /// The reference interpreter's run loop: one instruction at a time,
    /// nothing cached, nothing batched. Fetch is checked against PCC, then
    /// translated by the full VM walk and charged exactly; the instruction
    /// is found by scanning the region map and executed by direct
    /// semantics dispatch ([`cheri_sem::ops::step_instr`]) — the flat op
    /// table, pre-resolved dispatch indices and superblock clamps are all
    /// unused here, which is the point: any machinery bug shows up as a
    /// difference against this loop.
    fn run_reference(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile, max_instrs: u64) -> Exit {
        let mut executed = 0u64;
        while executed < max_instrs {
            match self.step_reference(vm, id, rf) {
                Ok(None) => executed += 1,
                Ok(Some(exit)) => return exit,
                Err(trap) => return Exit::Trap(trap),
            }
        }
        Exit::InstrLimit
    }

    /// Executes a single instruction the reference way.
    fn step_reference(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile) -> StepResult {
        let pc = rf.pc;
        rf.pcc
            .check_access(pc, 4, Perms::EXECUTE)
            .map_err(|f| TrapInfo {
                cause: TrapCause::Cap(f),
                pc,
                vaddr: Some(pc),
            })?;
        let pa = vm.translate(id, pc, Access::Exec).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc,
            vaddr: Some(pc),
        })?;
        self.stats.cycles += self.caches.access(pa.0, AccessKind::Fetch);
        let region = self.find_region(id, pc).ok_or(TrapInfo {
            cause: TrapCause::NoCode,
            pc,
            vaddr: Some(pc),
        })?;
        let di = region.instr_at(region.index_of(pc));
        let rstart = region.start();
        self.stats.instret += 1;
        self.stats.cycles += u64::from(di.base_cycles);
        let mut cx = StepCtx {
            rf: &mut *rf,
            pc,
            next: pc.wrapping_add(4),
            rstart,
        };
        let mut ports = RefPorts {
            cpu: self,
            vm: &mut *vm,
            id,
        };
        match cheri_sem::ops::step_instr(&mut ports, &mut cx, di.instr)? {
            Some(exit) => Ok(Some(sem_exit(exit))),
            None => {
                let next = cx.next;
                rf.pc = next;
                Ok(None)
            }
        }
    }

    fn run_inner(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile, max_instrs: u64) -> Exit {
        let mut executed = 0u64;
        if self.batch {
            while executed < max_instrs {
                if let Some(exit) =
                    self.run_superblock(vm, id, rf, max_instrs - executed, &mut executed)
                {
                    return exit;
                }
            }
            return Exit::InstrLimit;
        }
        while executed < max_instrs {
            match self.step(vm, id, rf) {
                Ok(None) => executed += 1,
                Ok(Some(exit)) => return exit,
                Err(trap) => return Exit::Trap(trap),
            }
        }
        Exit::InstrLimit
    }

    /// Pre-instruction snapshot for the lockstep oracle: taken only while
    /// armed and still divergence-free (the first divergence freezes the
    /// oracle so its diagnostic names the earliest drift).
    #[inline]
    fn lockstep_pre(&self, rf: &RegFile) -> Option<RegFile> {
        match &self.lockstep {
            Some(l) if l.divergence.is_none() => Some(rf.clone()),
            _ => None,
        }
    }

    /// Post-instruction lockstep check: decides whether this step is due
    /// (cadence countdown, or any trap/exit boundary) and if so shadows it
    /// and records the first divergence.
    fn lockstep_check(
        &mut self,
        vm: &Vm,
        id: AsId,
        pre: &RegFile,
        cx: &StepCtx<'_>,
        instr: Instr,
        res: &Result<Option<SemExit>, TrapInfo>,
    ) {
        let Some(mut ls) = self.lockstep.take() else {
            return;
        };
        if ls.divergence.is_none() {
            ls.countdown = ls.countdown.saturating_sub(1);
            let boundary = !matches!(res, Ok(None));
            if boundary || ls.countdown == 0 {
                ls.countdown = ls.every;
                if let Some(detail) = oracle::check_step(
                    vm,
                    id,
                    pre,
                    cx.rf,
                    cx.next,
                    cx.pc,
                    cx.rstart,
                    instr,
                    res,
                    ls.verify_stores,
                ) {
                    ls.divergence = Some(Divergence {
                        pc: cx.pc,
                        instret: self.stats.instret,
                        detail,
                    });
                }
            }
        }
        self.lockstep = Some(ls);
    }

    /// Executes one superblock prefix: a straight-line run with a single
    /// PCC bounds/perm check and a single translation, clamped so it can
    /// never cross a page boundary, exceed the PCC's top, or outrun the
    /// instruction budget. Returns `Some(exit)` to leave the run loop,
    /// `None` to continue with the next block.
    fn run_superblock(
        &mut self,
        vm: &mut Vm,
        id: AsId,
        rf: &mut RegFile,
        budget: u64,
        executed: &mut u64,
    ) -> Option<Exit> {
        let pc = rf.pc;
        // Re-entry fast path: loops re-enter the same blocks at the same
        // PCC under the same epoch, so the entry check, translation,
        // region lookup and clamps from last time are all still valid.
        // (Epoch monotonicity makes the `pa` reuse exactly as sound as a
        // TLB hit; the exact-PCC compare re-validates the EXECUTE check
        // and the top clamp.) The entry is *moved* out of its slot for the
        // duration of the block — no refcount traffic on a hit — and moved
        // back at the end. Op handlers never touch the region map or mode
        // flags, and the guard re-validates on every entry, so restoring
        // an entry that a mid-block epoch bump invalidated is harmless.
        let slot = Self::sb_slot(pc);
        let mut e = match self.sb_entries[slot].take() {
            Some(mut e) if e.pc == pc && e.epoch == vm.epoch() && e.pcc == rf.pcc => {
                if self.tmpl_active {
                    if let TmplState::Cold(hits) = &mut e.tmpl {
                        *hits += 1;
                        if *hits >= template::PROMOTE_THRESHOLD {
                            // The guard just revalidated the exact PCC,
                            // so the clamp inputs are current.
                            let pcc_top = rf.pcc.base().saturating_add(rf.pcc.length());
                            let pcc_rem = ((pcc_top - pc) / 4) as usize;
                            e.tmpl = match template::compile(
                                &e.region,
                                e.idx,
                                pc,
                                e.pa,
                                pcc_rem,
                                self.caches.l1_line(),
                            ) {
                                Some(t) => {
                                    self.stats.tmpl_compiles += 1;
                                    TmplState::Hot(Box::new(t))
                                }
                                None => TmplState::Rejected,
                            };
                        }
                    }
                    if let TmplState::Hot(t) = &e.tmpl {
                        // Below one full pass of budget the template
                        // cannot stop at the exact instruction the
                        // superblock tier would, so fall through to it.
                        if budget >= u64::from(t.n_trace) {
                            self.stats.tmpl_hits += 1;
                            self.run_template(t, rf, budget, executed);
                            self.sb_entries[slot] = Some(e);
                            return None;
                        }
                    }
                }
                self.stats.sb_hits += 1;
                self.mem_access(e.pa, AccessKind::Fetch);
                e
            }
            _ => {
                if let Err(f) = rf.pcc.check_access(pc, 4, Perms::EXECUTE) {
                    return Some(Exit::Trap(TrapInfo {
                        cause: TrapCause::Cap(f),
                        pc,
                        vaddr: Some(pc),
                    }));
                }
                let pa0 = match self.translate_cached(vm, id, pc, Access::Exec, pc) {
                    Ok(pa) => pa,
                    Err(t) => return Some(Exit::Trap(t)),
                };
                // The first instruction's fetch event goes in *before* the
                // region lookup, so a NoCode trap charges exactly what the
                // single-step path charges.
                self.mem_access(pa0, AccessKind::Fetch);
                let region = if let Some(r) = self.cur_code.as_ref().filter(|r| r.contains(pc)) {
                    self.stats.sb_hits += 1;
                    Arc::clone(r)
                } else {
                    self.stats.sb_misses += 1;
                    match self.find_region(id, pc) {
                        Some(r) => {
                            self.cur_code = Some(Arc::clone(&r));
                            r
                        }
                        None => {
                            return Some(Exit::Trap(TrapInfo {
                                cause: TrapCause::NoCode,
                                pc,
                                vaddr: Some(pc),
                            }))
                        }
                    }
                };
                let idx = region.index_of(pc);
                // Clamp the run: past a page boundary the next fetch needs
                // a fresh translation (and must not pre-fault a page the
                // block may never reach); past the PCC top the
                // per-instruction check of the slow path would trap.
                let run_len = region.block_last(idx) - idx + 1;
                let page_rem = ((FRAME_SIZE - pc % FRAME_SIZE) / 4) as usize;
                let pcc_top = rf.pcc.base().saturating_add(rf.pcc.length());
                let pcc_rem = ((pcc_top - pc) / 4) as usize;
                // The epoch is recorded *after* the translation, which may
                // itself have bumped it (COW resolution, swap-in).
                SbEntry {
                    pc,
                    pa: pa0,
                    idx,
                    n: run_len.min(page_rem).min(pcc_rem),
                    pcc: rf.pcc,
                    epoch: vm.epoch(),
                    region,
                    tmpl: TmplState::default(),
                }
            }
        };
        // Past the budget the run loop must return InstrLimit. The max(1)
        // keeps progress even at degenerate clamps (e.g. an unaligned pc
        // at the very end of a page).
        let budget_rem = usize::try_from(budget).unwrap_or(usize::MAX);
        let n = e.n.min(budget_rem).max(1);
        let block_epoch = self.seen_epoch;
        let rstart = e.region.start();
        let mut cur_pc = pc;
        let mut pa = e.pa;
        let mut out = None;
        for (k, di) in e.region.run(e.idx, n).iter().enumerate() {
            if k > 0 {
                self.mem_access(pa, AccessKind::Fetch);
            }
            self.stats.instret += 1;
            self.stats.cycles += u64::from(di.base_cycles);
            let pre = self.lockstep_pre(rf);
            let mut cx = StepCtx {
                rf: &mut *rf,
                pc: cur_pc,
                next: cur_pc.wrapping_add(4),
                rstart,
            };
            let res = {
                let mut ports = CpuPorts {
                    cpu: self,
                    vm: &mut *vm,
                    id,
                };
                ops::OP_TABLE[usize::from(di.op)](&mut ports, &mut cx, di.instr)
            };
            if let Some(pre) = &pre {
                self.lockstep_check(vm, id, pre, &cx, di.instr, &res);
            }
            match res {
                Err(trap) => {
                    out = Some(Exit::Trap(trap));
                    break;
                }
                Ok(Some(exit)) => {
                    out = Some(sem_exit(exit));
                    break;
                }
                Ok(None) => {
                    let next = cx.next;
                    rf.pc = next;
                    *executed += 1;
                    if next != cur_pc.wrapping_add(4) {
                        // Taken control flow: resume with a fresh block.
                        break;
                    }
                    if di.instr.is_memory() && self.seen_epoch != block_epoch {
                        // A data access mutated the mapping state (COW
                        // resolution, swap-in eviction): the block-entry
                        // translation is stale, so re-enter.
                        break;
                    }
                    cur_pc = next;
                    pa += 4;
                }
            }
        }
        // Demote on any trap: the block left the pure fast-loop regime
        // (fault handling may change mappings or re-enter differently),
        // so make the template re-earn its promotion.
        if matches!(out, Some(Exit::Trap(_))) {
            e.tmpl = TmplState::default();
        }
        self.sb_entries[slot] = Some(e);
        out
    }

    /// Records a line-coalesced fetch run into the pending event ring
    /// (template executions only run in batched mode). A run of `count`
    /// same-line fetches replays as one real access plus `count - 1` L1I
    /// hits — byte-identical stats to `count` individual accesses, see
    /// [`MemEventRing::record_run`].
    #[inline]
    fn record_fetch_run(&mut self, pa: u64, count: u64) {
        if count == 0 {
            return;
        }
        if self.events.is_full() {
            self.stats.cycles += self.caches.drain(&mut self.events);
        }
        self.events.record_run(pa, AccessKind::Fetch, count);
    }

    /// Executes a compiled trace template: loads the read∪write register
    /// set into locals, runs the straight-line plan (looping internally
    /// on a backedge terminator) until a side exit, the terminator's
    /// departure, or budget exhaustion, then flushes the write set and
    /// accounts retired instructions, base cycles and line-coalesced
    /// fetch events exactly as the superblock tier would have.
    ///
    /// The caller guarantees `budget >= n_trace` (so at least one full
    /// pass fits) and that the entry guard (pc/epoch/PCC) holds; pure-int
    /// ops can neither trap nor touch memory, so the guard stays valid
    /// for the whole execution and no exit other than a pc redirect can
    /// occur.
    fn run_template(&mut self, t: &Template, rf: &mut RegFile, budget: u64, executed: &mut u64) {
        debug_assert!(self.batch);
        let n_trace = u64::from(t.n_trace);
        let mut locals = [0u64; template::MAX_LOCALS];
        for &(reg, local) in &t.init {
            locals[usize::from(local)] = rf.gpr[usize::from(reg)];
        }
        let iters_max = budget / n_trace;
        let mut full = 0u64;
        let mut side: Option<(usize, u64)> = None;
        let next;
        'run: loop {
            for (k, op) in t.ops.iter().enumerate() {
                match *op {
                    TOp::Nop => {}
                    TOp::Li { d, imm } => locals[usize::from(d)] = imm,
                    TOp::Mov { d, s } => locals[usize::from(d)] = locals[usize::from(s)],
                    TOp::Add { d, a, b } => {
                        locals[usize::from(d)] =
                            locals[usize::from(a)].wrapping_add(locals[usize::from(b)]);
                    }
                    TOp::Sub { d, a, b } => {
                        locals[usize::from(d)] =
                            locals[usize::from(a)].wrapping_sub(locals[usize::from(b)]);
                    }
                    TOp::Mul { d, a, b } => {
                        locals[usize::from(d)] =
                            locals[usize::from(a)].wrapping_mul(locals[usize::from(b)]);
                    }
                    TOp::DivU { d, a, b } => {
                        locals[usize::from(d)] = locals[usize::from(a)]
                            .checked_div(locals[usize::from(b)])
                            .unwrap_or(0);
                    }
                    TOp::DivS { d, a, b } => {
                        let den = locals[usize::from(b)] as i64;
                        let num = locals[usize::from(a)] as i64;
                        locals[usize::from(d)] = if den == 0 {
                            0
                        } else {
                            num.wrapping_div(den) as u64
                        };
                    }
                    TOp::RemU { d, a, b } => {
                        let den = locals[usize::from(b)];
                        locals[usize::from(d)] = if den == 0 {
                            0
                        } else {
                            locals[usize::from(a)] % den
                        };
                    }
                    TOp::And { d, a, b } => {
                        locals[usize::from(d)] = locals[usize::from(a)] & locals[usize::from(b)];
                    }
                    TOp::Or { d, a, b } => {
                        locals[usize::from(d)] = locals[usize::from(a)] | locals[usize::from(b)];
                    }
                    TOp::Xor { d, a, b } => {
                        locals[usize::from(d)] = locals[usize::from(a)] ^ locals[usize::from(b)];
                    }
                    TOp::Nor { d, a, b } => {
                        locals[usize::from(d)] = !(locals[usize::from(a)] | locals[usize::from(b)]);
                    }
                    TOp::Sllv { d, a, b } => {
                        locals[usize::from(d)] =
                            locals[usize::from(a)] << (locals[usize::from(b)] & 63);
                    }
                    TOp::Srlv { d, a, b } => {
                        locals[usize::from(d)] =
                            locals[usize::from(a)] >> (locals[usize::from(b)] & 63);
                    }
                    TOp::Srav { d, a, b } => {
                        locals[usize::from(d)] = ((locals[usize::from(a)] as i64)
                            >> (locals[usize::from(b)] & 63))
                            as u64;
                    }
                    TOp::Slt { d, a, b } => {
                        locals[usize::from(d)] = u64::from(
                            (locals[usize::from(a)] as i64) < (locals[usize::from(b)] as i64),
                        );
                    }
                    TOp::Sltu { d, a, b } => {
                        locals[usize::from(d)] =
                            u64::from(locals[usize::from(a)] < locals[usize::from(b)]);
                    }
                    TOp::AddI { d, s, imm } => {
                        locals[usize::from(d)] = locals[usize::from(s)].wrapping_add(imm);
                    }
                    TOp::AndI { d, s, imm } => {
                        locals[usize::from(d)] = locals[usize::from(s)] & imm;
                    }
                    TOp::OrI { d, s, imm } => {
                        locals[usize::from(d)] = locals[usize::from(s)] | imm;
                    }
                    TOp::XorI { d, s, imm } => {
                        locals[usize::from(d)] = locals[usize::from(s)] ^ imm;
                    }
                    TOp::SllI { d, s, sh } => {
                        locals[usize::from(d)] = locals[usize::from(s)] << sh;
                    }
                    TOp::SrlI { d, s, sh } => {
                        locals[usize::from(d)] = locals[usize::from(s)] >> sh;
                    }
                    TOp::SraI { d, s, sh } => {
                        locals[usize::from(d)] = ((locals[usize::from(s)] as i64) >> sh) as u64;
                    }
                    TOp::SltI { d, s, imm } => {
                        locals[usize::from(d)] = u64::from((locals[usize::from(s)] as i64) < imm);
                    }
                    TOp::SltuI { d, s, imm } => {
                        locals[usize::from(d)] = u64::from(locals[usize::from(s)] < imm);
                    }
                    TOp::Branch {
                        cond,
                        a,
                        b,
                        taken_next,
                    } => {
                        if cond.taken(locals[usize::from(a)], locals[usize::from(b)]) {
                            side = Some((k, taken_next));
                            next = taken_next;
                            break 'run;
                        }
                    }
                }
            }
            full += 1;
            match t.term {
                TTerm::Loop => {
                    if full == iters_max {
                        next = t.entry_pc;
                        break 'run;
                    }
                }
                TTerm::CondLoop { cond, a, b } => {
                    if cond.taken(locals[usize::from(a)], locals[usize::from(b)]) {
                        if full == iters_max {
                            next = t.entry_pc;
                            break 'run;
                        }
                    } else {
                        next = t.fall_pc;
                        break 'run;
                    }
                }
                TTerm::Jump(target) => {
                    next = target;
                    break 'run;
                }
                TTerm::Jr { s } => {
                    next = locals[usize::from(s)];
                    break 'run;
                }
                TTerm::Jalr { d, s } => {
                    // Handler order: link write first, so `d == s` jumps
                    // to the link address.
                    locals[usize::from(d)] = t.fall_pc;
                    next = locals[usize::from(s)];
                    break 'run;
                }
                TTerm::Fallthrough => {
                    next = t.fall_pc;
                    break 'run;
                }
            }
        }
        // Metric settlement, in program order: the completed passes,
        // then the side-exiting partial pass (if any).
        let mut retired = full * n_trace;
        let mut cycles = full * t.cycles_total;
        if full > 0 {
            if let [(pa, count)] = t.fetch_runs[..] {
                // Single-line trace: every fetch of every pass hits the
                // same line, so the whole run coalesces into one event.
                self.record_fetch_run(pa, count * full);
            } else {
                for _ in 0..full {
                    for &(pa, count) in &t.fetch_runs {
                        self.record_fetch_run(pa, count);
                    }
                }
            }
        }
        if let Some((k, _)) = side {
            retired += k as u64 + 1;
            cycles += u64::from(t.cum_cycles[k]);
            let mut rem = k as u64 + 1;
            for &(pa, count) in &t.fetch_runs {
                let take = count.min(rem);
                self.record_fetch_run(pa, take);
                rem -= take;
                if rem == 0 {
                    break;
                }
            }
        }
        self.stats.instret += retired;
        self.stats.cycles += cycles;
        self.stats.sb_hits += full + u64::from(side.is_some());
        *executed += retired;
        if self.weaken_flush && !self.flush_weakened {
            // --weaken-flush: drop the first execution's write set on
            // the floor (one-shot so the guest still terminates).
            self.flush_weakened = true;
        } else {
            for &(local, reg) in &t.flush {
                rf.gpr[usize::from(reg)] = locals[usize::from(local)];
            }
        }
        rf.pc = next;
    }

    /// Executes a single instruction.
    fn step(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile) -> StepResult {
        let pc = rf.pc;
        let (di, rstart) = self.fetch(vm, id, rf)?;
        self.stats.instret += 1;
        self.stats.cycles += u64::from(di.base_cycles);
        let pre = self.lockstep_pre(rf);
        let mut cx = StepCtx {
            rf: &mut *rf,
            pc,
            next: pc.wrapping_add(4),
            rstart,
        };
        let res = {
            let mut ports = CpuPorts {
                cpu: self,
                vm: &mut *vm,
                id,
            };
            ops::OP_TABLE[usize::from(di.op)](&mut ports, &mut cx, di.instr)
        };
        if let Some(pre) = &pre {
            self.lockstep_check(vm, id, pre, &cx, di.instr, &res);
        }
        match res? {
            Some(exit) => Ok(Some(sem_exit(exit))),
            None => {
                let next = cx.next;
                rf.pc = next;
                Ok(None)
            }
        }
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, CapSource, PrincipalId};
    use cheri_isa::{creg, ireg, Width};
    use cheri_vm::{Backing, Prot};

    /// Builds a machine with one space, maps `code` at 0x10000 (rx) and a
    /// rw data page at 0x20000, returns (cpu, vm, as, regfile).
    fn machine(code: Vec<Instr>, purecap: bool) -> (Cpu, Vm, AsId, RegFile) {
        let mut vm = Vm::new(128);
        let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        let text_bytes: Vec<u8> = (0..code.len() as u32).flat_map(u32::to_le_bytes).collect();
        vm.map(
            id,
            Some(0x10000),
            (code.len() as u64 * 4).max(4096),
            Prot::rx(),
            Backing::Image {
                data: std::sync::Arc::new(text_bytes),
                offset: 0,
            },
            "text",
        )
        .unwrap();
        vm.map(id, Some(0x20000), 4096, Prot::rw(), Backing::Zero, "data")
            .unwrap();
        let mut cpu = Cpu::new();
        cpu.register_code(id, 0x10000, std::sync::Arc::new(code));
        let mut rf = RegFile::new(CapFormat::C128);
        let root = vm.space(id).root;
        rf.pcc = root
            .with_addr(0x10000)
            .set_bounds(0x1000, false)
            .unwrap()
            .and_perms(Perms::user_code());
        rf.pc = 0x10000;
        if purecap {
            // DDC NULL: CheriABI.
            rf.ddc = Capability::null(CapFormat::C128);
        } else {
            rf.ddc = root.with_source(CapSource::Exec);
        }
        // A data capability in c13 covering the rw page.
        rf.wc(
            creg::ptr(0),
            root.with_addr(0x20000).set_bounds(4096, true).unwrap(),
        );
        (cpu, vm, id, rf)
    }

    #[test]
    fn alu_and_syscall() {
        let code = vec![
            Instr::Li {
                rd: ireg::A0,
                imm: 20,
            },
            Instr::AddI {
                rd: ireg::A0,
                rs: ireg::A0,
                imm: 22,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::A0), 42);
        assert_eq!(cpu.stats.instret, 3);
        assert_eq!(rf.pc, 0x10000 + 3 * 4);
    }

    #[test]
    fn legacy_load_store_via_ddc() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 77,
            },
            Instr::Store {
                rs: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 77);
    }

    #[test]
    fn legacy_access_traps_with_null_ddc() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::DdcNull)),
            e => panic!("expected DDC trap, got {e:?}"),
        }
    }

    #[test]
    fn capability_bounds_enforced_on_loads() {
        let code = vec![
            // In-bounds store/load via c13.
            Instr::Li {
                rd: ireg::T1,
                imm: 5,
            },
            Instr::CStore {
                rs: ireg::T1,
                cb: creg::ptr(0),
                off: 8,
                w: Width::D,
            },
            Instr::CLoad {
                rd: ireg::T2,
                cb: creg::ptr(0),
                off: 8,
                w: Width::D,
                signed: false,
            },
            // One byte past the 4096-byte bounds.
            Instr::CLoad {
                rd: ireg::T3,
                cb: creg::ptr(0),
                off: 4096,
                w: Width::B,
                signed: false,
            },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => {
                assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation));
                assert_eq!(t.vaddr, Some(0x21000));
            }
            e => panic!("expected length trap, got {e:?}"),
        }
        assert_eq!(rf.r(ireg::T2), 5);
    }

    #[test]
    fn cap_roundtrip_through_memory_keeps_tag() {
        let code = vec![
            Instr::Csc {
                cs: creg::ptr(0),
                cb: creg::ptr(0),
                off: 16,
            },
            Instr::Clc {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                off: 16,
            },
            Instr::CGetTag {
                rd: ireg::T0,
                cb: creg::ptr(1),
            },
            // Overwrite one byte of the stored capability, reload: tag gone.
            Instr::Li {
                rd: ireg::T1,
                imm: 0xab,
            },
            Instr::CStore {
                rs: ireg::T1,
                cb: creg::ptr(0),
                off: 18,
                w: Width::B,
            },
            Instr::Clc {
                cd: creg::ptr(2),
                cb: creg::ptr(0),
                off: 16,
            },
            Instr::CGetTag {
                rd: ireg::T2,
                cb: creg::ptr(2),
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T0), 1, "capability loaded back with tag");
        assert_eq!(rf.r(ireg::T2), 0, "data overwrite cleared the tag");
    }

    #[test]
    fn derived_capability_cannot_widen() {
        let code = vec![
            // Narrow c13 to 16 bytes at 0x20000 then try to re-widen.
            Instr::Li {
                rd: ireg::T0,
                imm: 16,
            },
            Instr::CSetBounds {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                rs: ireg::T0,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 64,
            },
            Instr::CSetBounds {
                cd: creg::ptr(2),
                cb: creg::ptr(1),
                rs: ireg::T1,
            },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation)),
            e => panic!("expected monotonicity trap, got {e:?}"),
        }
    }

    #[test]
    fn unaligned_capability_access_traps() {
        let code = vec![Instr::Clc {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            off: 8,
        }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::UnalignedCapAccess)),
            e => panic!("expected alignment trap, got {e:?}"),
        }
    }

    #[test]
    fn jal_and_cjr_roundtrip() {
        // 0: jal 3 ; 1: syscall ; 2: nop ; 3: cjr cra
        let code = vec![
            Instr::Jal { target: 3 },
            Instr::Syscall,
            Instr::Nop,
            Instr::CJr { cb: creg::CRA },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(cpu.stats.instret, 3, "jal, cjr, syscall");
    }

    #[test]
    fn fetch_outside_pcc_traps() {
        let code = vec![Instr::Jr { rs: ireg::T0 }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        rf.w(ireg::T0, 0x30000); // outside pcc bounds
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation)),
            e => panic!("expected pcc trap, got {e:?}"),
        }
    }

    #[test]
    fn break_exits() {
        let code = vec![Instr::Break];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Break);
    }

    #[test]
    fn instr_limit_respected() {
        let code = vec![Instr::J { target: 0 }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 10), Exit::InstrLimit);
        assert_eq!(cpu.stats.instret, 10);
    }

    #[test]
    fn trace_records_setbounds() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 32,
            },
            Instr::CSetBounds {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                rs: ireg::T0,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        cpu.trace.enabled = true;
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(cpu.trace.len(), 1);
        assert_eq!(cpu.trace.events()[0].1, 32);
    }

    #[test]
    fn cycles_exceed_instret_with_cold_caches() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20000,
            },
            Instr::Load {
                rd: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert!(cpu.stats.cycles > cpu.stats.instret);

        // Pin the contract, not the call sites: total cycles must equal
        // the instructions' base cost plus *exactly* the stall cycles an
        // in-order replay of the access stream through an ExactSink
        // produces — however the execute loop batched them internally.
        let text_pa = vm.translate(id, 0x10000, Access::Exec).unwrap().0;
        let data_pa = vm.translate(id, 0x20000, Access::Read).unwrap().0;
        let mut reference = CacheHierarchy::fpga_default();
        let mut sink = cheri_mem::ExactSink::new(&mut reference);
        sink.record(text_pa, AccessKind::Fetch); // li
        sink.record(text_pa + 4, AccessKind::Fetch); // load
        sink.record(data_pa, AccessKind::Load);
        sink.record(text_pa + 8, AccessKind::Fetch); // syscall
        let stalls = sink.stalls;
        let base: u64 = code.iter().map(Instr::base_cycles).sum();
        assert_eq!(cpu.stats.cycles, base + stalls);
        assert_eq!(cpu.caches.stats(), reference.stats());
    }

    #[test]
    fn all_execution_modes_agree_on_all_counters() {
        // Superblock batching, forced-exact single-step, TLB-only, the
        // no-fast-path baseline, and the reference interpreter must be
        // guest-indistinguishable.
        let code = store_sync_store_load();
        let mut results = Vec::new();
        for (fast, superblocks, templates, exact, reference) in [
            (true, true, true, false, false),
            (true, true, false, false, false),
            (true, true, true, true, false),
            (true, false, false, false, false),
            (false, false, false, false, false),
            (true, true, true, false, true),
        ] {
            let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
            cpu.set_fast_path(fast);
            cpu.set_superblocks(superblocks);
            cpu.set_templates(templates);
            cpu.set_exact_mem_events(exact);
            cpu.set_reference(reference);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 10_000), Exit::Syscall);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 10_000), Exit::Syscall);
            results.push((cpu.stats, cpu.caches.stats(), vm.stats, rf.r(ireg::T2)));
        }
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    // ------------------------------------------------------------------
    // The template tier
    // ------------------------------------------------------------------

    /// The spin inner loop shape (`spec.rs`): count `iters` iterations,
    /// then fall through to a syscall. The hot trace spans two
    /// superblocks (li/sub/beqz and addi/j), so it exercises the
    /// cross-block walk, a mid-trace side exit and the internal backedge.
    fn spin_loop(iters: i64) -> Vec<Instr> {
        vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0,
            },
            // top:
            Instr::Li {
                rd: ireg::T1,
                imm: iters,
            },
            Instr::Sub {
                rd: ireg::T1,
                rs: ireg::T0,
                rt: ireg::T1,
            },
            Instr::Beq {
                rs: ireg::T1,
                rt: ireg::ZERO,
                target: 6,
            },
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            },
            Instr::J { target: 1 },
            // done:
            Instr::Syscall,
        ]
    }

    #[test]
    fn spin_loop_promotes_and_agrees_with_every_tier() {
        let code = spin_loop(400);
        let mut results = Vec::new();
        for (fast, superblocks, templates) in [
            (true, true, true),
            (true, true, false),
            (false, false, false),
        ] {
            let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
            cpu.set_fast_path(fast);
            cpu.set_superblocks(superblocks);
            cpu.set_templates(templates);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 100_000), Exit::Syscall);
            assert_eq!(rf.r(ireg::T0), 400);
            if templates {
                assert!(cpu.stats.tmpl_compiles >= 1, "the hot loop must promote");
                assert!(cpu.stats.tmpl_hits >= 1, "the compiled template must run");
            } else {
                assert_eq!(cpu.stats.tmpl_compiles, 0);
                assert_eq!(cpu.stats.tmpl_hits, 0);
            }
            results.push((cpu.stats, cpu.caches.stats(), vm.stats, rf.r(ireg::T0)));
        }
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn template_budget_exhaustion_matches_superblock_exactly() {
        // An endless loop under assorted non-multiple budgets: the
        // template must stop at precisely the same instruction (and the
        // same pc) the superblock tier would.
        let code = vec![
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            },
            Instr::J { target: 0 },
        ];
        for budget in [10u64, 201, 1000, 4097] {
            let mut results = Vec::new();
            for templates in [true, false] {
                let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
                cpu.set_templates(templates);
                assert_eq!(cpu.run(&mut vm, id, &mut rf, budget), Exit::InstrLimit);
                results.push((cpu.stats, cpu.caches.stats(), rf.pc, rf.r(ireg::T0)));
            }
            assert_eq!(results[0], results[1], "budget {budget}");
            assert_eq!(results[0].0.instret, budget);
        }
    }

    #[test]
    fn jalr_and_jr_templates_agree_with_single_step() {
        // A call loop whose callee returns through an integer register:
        // both the call block (jalr terminator) and the callee (jr
        // terminator) get hot enough to promote.
        let code = vec![
            Instr::Li {
                rd: ireg::temp(5),
                imm: 0x10000 + 7 * 4, // fn
            },
            Instr::Li {
                rd: ireg::T2,
                imm: 200,
            },
            // top:
            Instr::AddI {
                rd: ireg::T3,
                rs: ireg::T3,
                imm: 1,
            },
            Instr::AddI {
                rd: ireg::temp(4),
                rs: ireg::temp(4),
                imm: 1,
            },
            Instr::Jalr {
                rd: ireg::RA,
                rs: ireg::temp(5),
            },
            // return lands here:
            Instr::Bne {
                rs: ireg::T0,
                rt: ireg::T2,
                target: 2,
            },
            Instr::Syscall,
            // fn:
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            },
            Instr::AddI {
                rd: ireg::T1,
                rs: ireg::T1,
                imm: 2,
            },
            Instr::Jr { rs: ireg::RA },
        ];
        let mut results = Vec::new();
        for templates in [true, false] {
            let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
            cpu.set_templates(templates);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 100_000), Exit::Syscall);
            if templates {
                assert!(
                    cpu.stats.tmpl_compiles >= 2,
                    "call block and callee both promote, got {}",
                    cpu.stats.tmpl_compiles
                );
            }
            results.push((cpu.stats, cpu.caches.stats(), rf.clone()));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0].2.r(ireg::T0), 200);
        assert_eq!(results[0].2.r(ireg::T1), 400);
    }

    /// An endless ALU loop behind a one-shot store — rerunning it from
    /// the region start re-touches the data page, so fork/COW and swap
    /// machinery have something to chew on between runs.
    fn store_then_spin() -> Vec<Instr> {
        vec![
            Instr::Li {
                rd: ireg::T1,
                imm: 0x20010,
            },
            Instr::Li {
                rd: ireg::T2,
                imm: 7,
            },
            Instr::Store {
                rs: ireg::T2,
                base: ireg::T1,
                off: 0,
                w: Width::D,
            },
            // top:
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            },
            Instr::J { target: 3 },
        ]
    }

    #[test]
    fn epoch_bumps_demote_compiled_templates() {
        // Every kernel-side mapping mutation — mprotect, swap-out, fork,
        // COW resolution — bumps the VM translation epoch, which fails
        // the re-entry guard, rebuilds the entry and resets its template
        // state to cold. Each phase below must therefore recompile from
        // scratch: the compile counter is the demotion witness.
        let (mut cpu, mut vm, id, mut rf) = machine(store_then_spin(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 500), Exit::InstrLimit);
        assert_eq!(cpu.stats.tmpl_compiles, 1, "hot loop promoted");
        assert!(cpu.stats.tmpl_hits >= 1);

        // mprotect: same rights, but the epoch bump alone must demote.
        vm.protect(id, 0x20000, 4096, Prot::rw()).unwrap();
        rf.pc = 0x10000;
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 500), Exit::InstrLimit);
        assert_eq!(cpu.stats.tmpl_compiles, 2, "mprotect demoted the template");

        // Swap-out (and the swap-in the store then re-faults).
        assert!(vm.swap_out(id, 0x20000).unwrap());
        rf.pc = 0x10000;
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 500), Exit::InstrLimit);
        assert_eq!(cpu.stats.tmpl_compiles, 3, "swap demoted the template");

        // Fork, then COW resolution when the parent's store re-executes.
        let child = vm.fork_space(id).unwrap();
        cpu.clone_code(id, child);
        rf.pc = 0x10000;
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 500), Exit::InstrLimit);
        assert_eq!(vm.stats.cow_copies, 1, "the store resolved COW");
        assert_eq!(cpu.stats.tmpl_compiles, 4, "fork/COW demoted the template");
    }

    #[test]
    fn trap_demotes_the_faulting_blocks_template() {
        // Promote the loop, then revoke write on the data page and rerun
        // from the start: the store traps. The next full rerun must
        // recompile (trap + epoch bump both demote) and still agree.
        let (mut cpu, mut vm, id, mut rf) = machine(store_then_spin(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 500), Exit::InstrLimit);
        assert_eq!(cpu.stats.tmpl_compiles, 1);
        vm.protect(id, 0x20000, 4096, Prot::READ).unwrap();
        rf.pc = 0x10000;
        match cpu.run(&mut vm, id, &mut rf, 500) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Vm(VmError::Protection(0x20010))),
            e => panic!("expected protection fault, got {e:?}"),
        }
        vm.protect(id, 0x20000, 4096, Prot::rw()).unwrap();
        rf.pc = 0x10000;
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 500), Exit::InstrLimit);
        assert_eq!(cpu.stats.tmpl_compiles, 2, "re-promoted after the trap");
    }

    #[test]
    fn mode_matrix_agrees_on_trap_heavy_probes() {
        // single ≡ superblock ≡ template on probes that end in traps:
        // the widen probe (capability fault) and a null-DDC legacy load.
        let ddc_probe = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
        ];
        for code in [widen_probe(), ddc_probe] {
            let mut results = Vec::new();
            for (fast, superblocks, templates) in [
                (false, false, false),
                (true, true, false),
                (true, true, true),
            ] {
                let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), true);
                cpu.set_fast_path(fast);
                cpu.set_superblocks(superblocks);
                cpu.set_templates(templates);
                let exit = cpu.run(&mut vm, id, &mut rf, 10_000);
                assert!(matches!(exit, Exit::Trap(_)), "probe must trap: {exit:?}");
                results.push((exit, cpu.stats, cpu.caches.stats(), vm.stats, rf.pc));
            }
            for r in &results[1..] {
                assert_eq!(*r, results[0]);
            }
        }
    }

    #[test]
    fn weaken_flush_loses_writes_once_and_is_caught_by_comparison() {
        // The deliberate residency bug: the first template execution
        // drops its exit flush, so the spin counter silently rewinds —
        // exactly what the cross-tier gates must flag. One-shot, so the
        // guest still terminates.
        let code = spin_loop(400);
        let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100_000), Exit::Syscall);
        let clean = (cpu.stats, rf.r(ireg::T0));

        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        cpu.set_weaken_flush(true);
        assert!(cpu.weaken_flush());
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 200_000), Exit::Syscall);
        assert_ne!(
            (cpu.stats, rf.r(ireg::T0)),
            clean,
            "dropping one flush must be guest-visible"
        );
    }

    // ------------------------------------------------------------------
    // The lockstep oracle
    // ------------------------------------------------------------------

    /// The widen probe: narrow a capability, then try to re-widen it. The
    /// strict semantics trap on the second `csetbounds`; the weakened fast
    /// path sails through — which the shadow must catch.
    fn widen_probe() -> Vec<Instr> {
        vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 16,
            },
            Instr::CSetBounds {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                rs: ireg::T0,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 64,
            },
            Instr::CSetBounds {
                cd: creg::ptr(2),
                cb: creg::ptr(1),
                rs: ireg::T1,
            },
            Instr::Syscall,
        ]
    }

    #[test]
    fn lockstep_is_clean_and_invisible_on_correct_execution() {
        // A memory-heavy program, with and without the oracle armed: no
        // divergence, and — crucially for report-cache identity — no
        // difference in any guest-visible counter either.
        let code = store_sync_store_load();
        let mut results = Vec::new();
        for armed in [false, true] {
            let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
            if armed {
                cpu.set_lockstep(1, true);
            }
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 10_000), Exit::Syscall);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 10_000), Exit::Syscall);
            assert_eq!(cpu.take_divergence(), None);
            results.push((cpu.stats, cpu.caches.stats(), vm.stats, rf.r(ireg::T2)));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn lockstep_matches_traps_too() {
        // The trapping CLoad at the end is a boundary: the shadow must
        // reproduce the exact capability fault, not report a divergence.
        let code = vec![Instr::CLoad {
            rd: ireg::T3,
            cb: creg::ptr(0),
            off: 4096,
            w: Width::B,
            signed: false,
        }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        cpu.set_lockstep(1, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation)),
            e => panic!("expected length trap, got {e:?}"),
        }
        assert_eq!(cpu.take_divergence(), None);
    }

    #[test]
    fn lockstep_catches_weakened_semantics() {
        let (mut cpu, mut vm, id, mut rf) = machine(widen_probe(), true);
        cpu.set_weaken_sem(true);
        cpu.set_lockstep(1, true);
        // The weakened fast path does NOT trap: the program runs to its
        // syscall with an illegally widened capability in c15.
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        let d = cpu.take_divergence().expect("oracle must catch the widen");
        assert_eq!(d.pc, 0x10000 + 3 * 4, "the second csetbounds");
        assert!(
            d.detail.contains("shadow"),
            "diagnostic names both sides: {}",
            d.detail
        );
        // Only the first divergence is kept.
        assert_eq!(cpu.take_divergence(), None);
    }

    #[test]
    fn lockstep_cadence_still_lands_on_the_divergent_step() {
        // every=2 checks instructions 2 and 4 — the second csetbounds is
        // the 4th retired instruction, so the sampled oracle still sees it.
        let (mut cpu, mut vm, id, mut rf) = machine(widen_probe(), true);
        cpu.set_weaken_sem(true);
        cpu.set_lockstep(2, true);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        let d = cpu.take_divergence().expect("cadence 2 lands on the widen");
        assert_eq!(d.instret, 4);
    }

    // ------------------------------------------------------------------
    // Epoch invalidation edges: each test warms the TLB with a guest
    // access, mutates the VM from the kernel side *without* any explicit
    // flush, and proves the next guest access re-faults instead of using
    // a stale translation.
    // ------------------------------------------------------------------

    /// `store; syscall; store; load; syscall` against the rw data page,
    /// split into two `run` calls at the first syscall.
    fn store_sync_store_load() -> Vec<Instr> {
        vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 7,
            },
            Instr::Store {
                rs: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
            Instr::Li {
                rd: ireg::T1,
                imm: 9,
            },
            Instr::Store {
                rs: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
        ]
    }

    #[test]
    fn mprotect_revoking_write_faults_through_warm_tlb() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        // Kernel side: revoke write on the data page. No flush call — the
        // epoch bump alone must kill the warm Write translation.
        vm.protect(id, 0x20000, 4096, Prot::READ).unwrap();
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => {
                assert_eq!(t.cause, TrapCause::Vm(VmError::Protection(0x20010)));
            }
            e => panic!("expected protection fault, got {e:?}"),
        }
    }

    #[test]
    fn swap_out_of_translated_page_refaults_and_swaps_in() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 7);
        // Kernel side: evict the data page. Its frame is freed and may be
        // reused; a stale TLB entry would read someone else's memory.
        assert!(vm.swap_out(id, 0x20000).unwrap());
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 9, "data must survive the swap round trip");
        assert_eq!(
            vm.stats.swap_ins, 1,
            "the access after eviction must re-fault"
        );
    }

    #[test]
    fn cow_resolve_redirects_warm_read_translation() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 7, "warm Read TLB entry for the data page");
        // Kernel side: fork. The parent's data page is now COW-shared.
        let child = vm.fork_space(id).unwrap();
        cpu.clone_code(id, child);
        // Parent resumes: the store must copy the page, and the load after
        // it must read 9 from the *new* frame — a stale Read entry would
        // keep pointing at the old shared frame, which still holds 7.
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 9, "read must follow the COW copy");
        assert_eq!(vm.stats.cow_copies, 1);
        assert_eq!(vm.read_u64(child, 0x20010).unwrap(), 7, "child unchanged");
    }

    #[test]
    fn fork_teardown_leaves_parent_sole_owner() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        // Kernel side: fork, then tear the child down again (exit before
        // touching anything). Both transitions bump the epoch.
        let child = vm.fork_space(id).unwrap();
        cpu.clone_code(id, child);
        cpu.clear_code(child);
        vm.destroy_space(child);
        // Parent resumes sole owner: the write clears the COW marking in
        // place, with no page copy.
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 9);
        assert_eq!(vm.stats.cow_copies, 0, "sole owner must not copy");
    }

    #[test]
    fn fast_path_and_baseline_agree_on_all_counters() {
        // A branchy loop plus memory traffic, run twice from identical
        // machines: once with the fast path, once forced down the full
        // vm.translate + region-scan path. Every guest-visible counter
        // must agree.
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 200,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 0x20000,
            },
            // loop:
            Instr::Store {
                rs: ireg::T0,
                base: ireg::T1,
                off: 8,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T1,
                off: 8,
                w: Width::D,
                signed: false,
            },
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: -1,
            },
            Instr::Bgtz {
                rs: ireg::T0,
                target: 2,
            },
            Instr::Syscall,
        ];
        let mut results = Vec::new();
        for fast in [true, false] {
            let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
            cpu.set_fast_path(fast);
            assert_eq!(cpu.fast_path(), fast);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 10_000), Exit::Syscall);
            results.push((cpu.stats, cpu.caches.stats(), vm.stats, rf.r(ireg::T2)));
        }
        assert_eq!(results[0], results[1]);
    }
}
