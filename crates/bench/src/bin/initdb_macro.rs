//! Regenerates the **§5.2 initdb macro-benchmark**: cycles for the minidb
//! `initdb` under mips64, CheriABI (large-immediate CLC), CheriABI with the
//! original small CLC immediate, and the AddressSanitizer build — plus the
//! code-size effect of the CLC extension.
//!
//! Paper: "PostgreSQL is only 6.8% slower as a CheriABI binary ...
//! compiling the initdb binary with Address Sanitizer instrumentation
//! requires 3.29 times more cycles to complete"; the large-immediate CLC
//! "reduces the code size of most binaries by over 10%, and reduces the
//! initdb overhead from 11% to 6.8%".

use cheri_bench::cli::{self, json_escape, json_f64};
use cheri_bench::configurations;
use cheri_kernel::ExitStatus;
use cheriabi::harness::{CaseOutcome, CaseReport, RunSpec};
use cheriabi::spec::ProgramSpec;

const RECORDS: i64 = 420;

fn cycles_instrs(report: &CaseReport) -> (u64, u64) {
    match &report.outcome {
        CaseOutcome::Exited(ExitStatus::Code(_)) => {
            (report.metrics.cycles, report.metrics.instructions)
        }
        other => panic!("{}: initdb stopped abnormally: {other}", report.name),
    }
}

fn main() {
    let cli_opts = cli::parse_env();
    let registry = cheri_bench::registry();
    let program = ProgramSpec::Initdb { records: RECORDS };
    let configs = configurations();
    let specs: Vec<RunSpec> = configs
        .iter()
        .map(|(name, opts, abi, asan)| {
            RunSpec::new(format!("initdb-{name}"), program.clone(), *opts, *abi)
                .with_budget(2_000_000_000)
                .with_asan(*asan)
        })
        .collect();
    let Some(reports) = cli::run_specs(&registry, &specs, &cli_opts) else {
        return;
    };
    if !cli_opts.json {
        println!("initdb macro-benchmark ({RECORDS} records)");
        println!(
            "{:<20} {:>14} {:>12} {:>10} {:>10}",
            "config", "cycles", "instrs", "vs mips64", "code size"
        );
    }
    let mut base_cycles = 0f64;
    for ((name, opts, _, _), report) in configs.iter().zip(&reports) {
        // Code size is a static property of the lowered program; it does
        // not need (and must not perturb) the measured run.
        let code: usize = registry
            .lower(&program, *opts, report.seed)
            .objects
            .iter()
            .map(|o| o.code.len())
            .sum();
        let (cycles, instrs) = cycles_instrs(report);
        if *name == "mips64" {
            base_cycles = cycles as f64;
        }
        if cli_opts.json {
            println!(
                "{{\"experiment\":\"initdb_macro\",\"config\":\"{}\",\"cycles\":{cycles},\"instructions\":{instrs},\"vs_mips64\":{},\"code_bytes\":{code}}}",
                json_escape(name),
                json_f64(cycles as f64 / base_cycles)
            );
        } else {
            println!(
                "{:<20} {:>14} {:>12} {:>9.2}x {:>10}",
                name,
                cycles,
                instrs,
                cycles as f64 / base_cycles,
                code,
            );
        }
    }
    if cli_opts.json {
        return;
    }
    println!();
    println!(
        "Paper: cheriabi ≈ 1.068x, cheriabi-smallclc ≈ 1.11x, asan ≈ 3.29x;\n\
         the large-immediate CLC shrinks code by >10% on GOT-heavy binaries."
    );
}
