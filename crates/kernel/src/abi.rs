//! Process ABIs, syscall numbers and error codes.

use std::fmt;

/// The two process ABIs CheriBSD supports side by side (§4: "We continue to
/// support the large suite of 'legacy' mips64 userspace applications that
/// adhere to the SysV ABI, alongside CheriABI userspace programs").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbiMode {
    /// Legacy SysV ABI: integer pointers, DDC spans the address space.
    Mips64,
    /// CheriABI: capability pointers everywhere, DDC = NULL.
    CheriAbi,
}

impl AbiMode {
    /// In-memory pointer size under this ABI (128-bit capabilities).
    #[must_use]
    pub fn ptr_size(self) -> u64 {
        match self {
            AbiMode::Mips64 => 8,
            AbiMode::CheriAbi => 16,
        }
    }

    /// The matching code-generation ABI.
    #[must_use]
    pub fn codegen_abi(self) -> cheri_isa::codegen::Abi {
        match self {
            AbiMode::Mips64 => cheri_isa::codegen::Abi::Mips64,
            AbiMode::CheriAbi => cheri_isa::codegen::Abi::PureCap,
        }
    }
}

impl fmt::Display for AbiMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbiMode::Mips64 => "mips64",
            AbiMode::CheriAbi => "cheriabi",
        })
    }
}

/// System-call numbers (loaded into `$v0` before `syscall`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i64)]
#[allow(missing_docs)] // names mirror the POSIX calls they model
pub enum Sys {
    Exit = 1,
    Write = 2,
    Read = 3,
    Open = 4,
    Close = 5,
    Pipe = 6,
    Getpid = 7,
    Fork = 8,
    Waitpid = 9,
    Mmap = 10,
    Munmap = 11,
    Shmget = 12,
    Shmat = 13,
    Shmdt = 14,
    Sigaction = 15,
    Sigreturn = 16,
    Kill = 17,
    Select = 18,
    KeventRegister = 19,
    KeventWait = 20,
    Ptrace = 21,
    /// Deliberately unsupported: "we have excluded sbrk as a matter of
    /// principle" (§4); always returns `ENOSYS`.
    Sbrk = 22,
    Ioctl = 23,
    Sysctl = 24,
    Unlink = 25,
    /// Test/benchmark hook: force pages of the calling process to swap.
    Swapctl = 26,
    /// Runtime services (userspace malloc implemented as a trusted runtime;
    /// see DESIGN.md §3 — capability flow matches the paper's jemalloc).
    RtMalloc = 40,
    RtFree = 41,
    RtRealloc = 42,
    /// Temporal safety: enable/disable allocator quarantine (a0 = 0/1).
    RtSetTemporal = 43,
    /// Temporal safety: revocation sweep; returns revoked-capability count.
    RtRevoke = 44,
    /// `mprotect(addr/cap, len, prot)`.
    Mprotect = 27,
    /// Reads the deterministic guest cycle clock (scenario latency stamps).
    Cycles = 28,
}

impl Sys {
    /// Decodes a syscall number.
    #[must_use]
    pub fn from_number(n: u64) -> Option<Sys> {
        Some(match n {
            1 => Sys::Exit,
            2 => Sys::Write,
            3 => Sys::Read,
            4 => Sys::Open,
            5 => Sys::Close,
            6 => Sys::Pipe,
            7 => Sys::Getpid,
            8 => Sys::Fork,
            9 => Sys::Waitpid,
            10 => Sys::Mmap,
            11 => Sys::Munmap,
            12 => Sys::Shmget,
            13 => Sys::Shmat,
            14 => Sys::Shmdt,
            15 => Sys::Sigaction,
            16 => Sys::Sigreturn,
            17 => Sys::Kill,
            18 => Sys::Select,
            19 => Sys::KeventRegister,
            20 => Sys::KeventWait,
            21 => Sys::Ptrace,
            22 => Sys::Sbrk,
            23 => Sys::Ioctl,
            24 => Sys::Sysctl,
            25 => Sys::Unlink,
            26 => Sys::Swapctl,
            27 => Sys::Mprotect,
            28 => Sys::Cycles,
            40 => Sys::RtMalloc,
            41 => Sys::RtFree,
            42 => Sys::RtRealloc,
            43 => Sys::RtSetTemporal,
            44 => Sys::RtRevoke,
            _ => return None,
        })
    }
}

/// POSIX-style error numbers returned (negated) in `$v0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i64)]
#[allow(missing_docs)]
pub enum Errno {
    EPERM = 1,
    ENOENT = 2,
    ESRCH = 3,
    /// Interrupted call. With kernel restart semantics (the default here)
    /// user code never observes it; the fault-injection plane uses it to
    /// exercise the restart path.
    EINTR = 4,
    EBADF = 9,
    ECHILD = 10,
    ENOMEM = 12,
    EFAULT = 14,
    EBUSY = 16,
    EEXIST = 17,
    EINVAL = 22,
    ENOSYS = 78,
    /// Capability permission missing (CheriBSD's `EPROT`).
    EPROT = 96,
}

impl Errno {
    /// The value placed in `$v0`: `-errno`.
    #[must_use]
    pub fn as_ret(self) -> u64 {
        (-(self as i64)) as u64
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_numbers_roundtrip() {
        for n in 1..=44 {
            if let Some(s) = Sys::from_number(n) {
                assert_eq!(s as i64 as u64, n, "{s:?}");
            }
        }
        assert!(Sys::from_number(0).is_none());
        assert!(Sys::from_number(999).is_none());
    }

    #[test]
    fn errno_encoding_is_negative() {
        assert_eq!(Errno::EFAULT.as_ret() as i64, -14);
    }

    #[test]
    fn ptr_sizes() {
        assert_eq!(AbiMode::Mips64.ptr_size(), 8);
        assert_eq!(AbiMode::CheriAbi.ptr_size(), 16);
    }
}
