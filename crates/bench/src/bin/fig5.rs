//! Regenerates **Figure 5**: the cumulative number of capabilities created
//! during a `tlsish` (openssl-`s_server` stand-in) run, against the size of
//! their bounds, per capability source (§5.5's trace-based reconstruction
//! of the process's abstract capability).

use cheri_bench::cli::{self, json_escape, json_f64};
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::AbiMode;
use cheriabi::harness::RunSpec;
use cheriabi::spec::ProgramSpec;

const SESSIONS: i64 = 200;

fn main() {
    let opts = cli::parse_env();
    let spec = RunSpec::new(
        format!("tlsish-{SESSIONS}"),
        ProgramSpec::Tlsish { sessions: SESSIONS },
        CodegenOpts::purecap(),
        AbiMode::CheriAbi,
    )
    .with_trace(true);
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &[spec], &opts) else {
        return;
    };
    let report = &reports[0];
    let cdf = report
        .cap_cdf
        .as_ref()
        .expect("traced run collects the capability CDF");
    if opts.json {
        for source in cdf.sources() {
            let max = cdf.max_exp_with_growth(source).unwrap_or(0);
            for exp in 0..=max {
                println!(
                    "{{\"figure\":\"fig5\",\"source\":\"{}\",\"log2_bound\":{exp},\"cumulative\":{}}}",
                    json_escape(&format!("{source}")),
                    cdf.cumulative(source, exp)
                );
            }
        }
        println!(
            "{{\"figure\":\"fig5\",\"total\":{},\"frac_le_1kib\":{},\"frac_le_16mib\":{}}}",
            cdf.total(),
            json_f64(cdf.fraction_at_most(10)),
            json_f64(cdf.fraction_at_most(24))
        );
        return;
    }
    println!(
        "Figure 5: cumulative capabilities by bounds size (tlsish, {} sessions, {})",
        SESSIONS, report.outcome
    );
    println!(
        "run: {} instructions, {} syscalls, {} derivation events",
        report.metrics.instructions,
        report.metrics.syscalls,
        cdf.total()
    );
    println!();
    println!("{cdf}");
    println!(
        "fraction of capabilities with bounds <= 1 KiB: {:.1}%",
        cdf.fraction_at_most(10) * 100.0
    );
    println!(
        "fraction of capabilities with bounds <= 16 MiB: {:.1}%",
        cdf.fraction_at_most(24) * 100.0
    );
    println!();
    println!(
        "Paper (Figure 5) shape: no capability grants access to more than\n\
         16 MiB; around 90% grant access to less than 1 KiB; stack and\n\
         malloc capabilities are tightly bounded; kern and syscall series\n\
         are tiny; the baseline legacy process would be a vertical line at\n\
         the maximum user address."
    );
}
