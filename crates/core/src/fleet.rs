//! The fault-tolerant fleet executor.
//!
//! The ROADMAP's fleet-scale evaluation service wants a million-case
//! corpus sweep as a routine CI job. At that scale individual runner
//! failures are *routine inputs*, not exceptional conditions: a worker
//! process dies mid-shard, wedges on a pathological case, or emits a torn
//! JSON line because the box ran out of memory. This module is the
//! coordinator that absorbs all of that while still producing output
//! byte-identical to a single-process run.
//!
//! **The protocol.** The spec list is split into fixed-size *work units*
//! (contiguous runs of submission indices). Each unit is piped to a worker
//! subprocess — by convention `run_specs --specs - --jobs 1 --no-cache
//! --shard 0/1` — as one spec JSON line per case on stdin; the worker
//! prints one deterministic report line per case (`{"case":<local>,...}`,
//! no wall time, no host counters) on stdout. The coordinator validates
//! every line, rewrites the local indices to global submission indices
//! *textually* (so worker bytes are preserved exactly), and concatenates
//! the units in order. Because the deterministic line format is
//! context-free, the merged output is byte-identical to
//! `run_specs --shard 0/1` over the whole list — the same contract the
//! shard-merge machinery already enforces ([`crate::harness::merge_shards`]).
//!
//! **The unit lifecycle** (see DESIGN.md "The fleet tier"):
//!
//! ```text
//!            +----------------------------- backoff -------------+
//!            v                                                   |
//! Pending -> Dispatched(attempt k) --crash/hang/poison/spawn-fail+
//!            |        |                                (k < retries)
//!            |        +-- crash/hang/poison (k >= retries) -> InProcess
//!            v                                                   |
//!        Completed  <--------------------------------------------+
//!            |
//!            v
//!       Checkpointed
//! ```
//!
//! * a worker that exceeds the per-unit wall deadline is **killed** and the
//!   unit re-dispatched (hang detection);
//! * a worker that exits non-zero, dies to a signal, or cannot even be
//!   spawned costs one attempt with a deterministic exponential backoff —
//!   the exact harness retry policy ([`crate::harness::retry_backoff`]);
//! * corrupt, truncated or miscounted output is scored
//!   [`UnitOutcome::Poisoned`] and counted, never propagated and never
//!   fatal;
//! * a unit that exhausts its subprocess attempts degrades to **in-process
//!   execution** on the coordinator's own thread — the sweep always
//!   completes, even with no working worker binary at all;
//! * near the end of the sweep, idle slots speculatively duplicate the
//!   longest-running in-flight unit (straggler re-issue); the first valid
//!   result wins and the loser is discarded.
//!
//! **Checkpointing.** Every completed unit is written (atomic tmp+rename)
//! to `target/fleet-ckpt/<session>/unit-NNNNN.ckpt`, where `<session>` is
//! a hash of the full spec list and the unit size. With
//! [`FleetOpts::resume`], valid checkpoints are loaded before dispatching
//! and their units are never re-executed; an interrupted sweep therefore
//! redoes zero completed work. A sweep that runs to completion removes its
//! session directory.
//!
//! **Chaos mode.** [`FleetOpts::chaos`] arms a seeded fault injector
//! *inside the coordinator*: it kills workers mid-unit, delays their
//! output, and inserts garbage lines into their streams — deterministically
//! per `(seed, unit, attempt)`, and only on the first attempt so recovery
//! always converges. This is the coordinator's own `FaultPlan`: the CI
//! chaos gate proves the recovery paths produce byte-identical output with
//! faults armed.

use crate::harness::{execute_spec, outcome_is_transient, retry_backoff, RunSpec};
use crate::json::{self, Json};
use crate::spec::Registry;
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a worker subprocess is launched. The command must read spec JSON
/// lines on stdin and print one deterministic report line per spec
/// (`{"case":<local index>,...}`, the `--shard` line format) on stdout —
/// `run_specs --specs - --jobs 1 --no-cache --shard 0/1` is the canonical
/// worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerCmd {
    /// Executable to spawn.
    pub program: PathBuf,
    /// Arguments, passed verbatim.
    pub args: Vec<String>,
}

impl WorkerCmd {
    /// The canonical worker invocation for a `run_specs` binary at `path`.
    #[must_use]
    pub fn run_specs(path: impl Into<PathBuf>) -> WorkerCmd {
        WorkerCmd {
            program: path.into(),
            args: [
                "--specs",
                "-",
                "--jobs",
                "1",
                "--no-cache",
                "--shard",
                "0/1",
            ]
            .iter()
            .map(ToString::to_string)
            .collect(),
        }
    }
}

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct FleetOpts {
    /// Worker slots (subprocesses dispatched concurrently), ≥ 1.
    pub workers: usize,
    /// Specs per work unit, ≥ 1.
    pub unit_size: usize,
    /// Wall-clock deadline per dispatched unit; a worker still running
    /// past it is killed and the unit re-dispatched (hang detection).
    pub unit_deadline: Duration,
    /// Subprocess re-dispatch attempts per unit before degrading to
    /// in-process execution. Backoff between attempts is the harness
    /// policy, [`crate::harness::retry_backoff`].
    pub retries: u64,
    /// Seeded coordinator-side fault injection: kill a worker mid-unit,
    /// delay its output, or insert a garbage line — deterministically per
    /// `(seed, unit, attempt)`, first attempts only.
    pub chaos: Option<u64>,
    /// How to launch workers. `None` runs every unit in-process (the
    /// fully-degraded mode, also the pure-library mode for tests).
    pub worker: Option<WorkerCmd>,
    /// Checkpoint root (`None` disables checkpointing). Completed units
    /// are written under `<root>/<session>/`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load valid checkpoints before dispatching; their units are counted
    /// as resumed and never re-executed.
    pub resume: bool,
    /// Test/CI hook: stop dispatching once this many units have completed
    /// and return an interrupted summary — simulating an interrupted sweep
    /// without needing to deliver a real signal.
    pub stop_after: Option<usize>,
    /// How long an in-flight unit must run before an idle slot may issue a
    /// speculative duplicate of it.
    pub straggler_after: Duration,
    /// Per-*case* transient-retry budget (the harness `--retries` policy,
    /// distinct from [`FleetOpts::retries`], which re-dispatches whole
    /// units). Forwarded to workers as `--retries N` and applied
    /// identically by the in-process fallback, so a fleet run with session
    /// retries merges byte-identically with the equivalent single-process
    /// run.
    pub case_retries: u64,
}

impl Default for FleetOpts {
    fn default() -> Self {
        FleetOpts {
            workers: 4,
            unit_size: 8,
            unit_deadline: Duration::from_secs(120),
            retries: 2,
            chaos: None,
            worker: None,
            checkpoint_dir: Some(default_checkpoint_dir()),
            resume: false,
            stop_after: None,
            straggler_after: Duration::from_secs(5),
            case_retries: 0,
        }
    }
}

/// The conventional checkpoint root, `<target dir>/fleet-ckpt/`
/// (honouring `CARGO_TARGET_DIR`).
#[must_use]
pub fn default_checkpoint_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map_or_else(|| PathBuf::from("target"), PathBuf::from)
        .join("fleet-ckpt")
}

/// What one dispatch attempt of one unit produced.
#[derive(Debug)]
pub enum UnitOutcome {
    /// Every line validated; the unit's deterministic report lines, with
    /// global submission indices.
    Completed(Vec<String>),
    /// The worker exited cleanly but its output was corrupt: a torn or
    /// non-JSON line, a wrong or out-of-order `case` index, or a line
    /// count that does not match the unit. Counted, never fatal.
    Poisoned(String),
    /// The worker exited non-zero or died to a signal.
    Crashed(String),
    /// The worker outlived the per-unit deadline and was killed.
    Hung,
    /// The worker could not even be spawned.
    SpawnFailed(String),
}

impl fmt::Display for UnitOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitOutcome::Completed(lines) => write!(f, "completed ({} lines)", lines.len()),
            UnitOutcome::Poisoned(why) => write!(f, "poisoned: {why}"),
            UnitOutcome::Crashed(why) => write!(f, "crashed: {why}"),
            UnitOutcome::Hung => write!(f, "hung (deadline exceeded, worker killed)"),
            UnitOutcome::SpawnFailed(why) => write!(f, "spawn failed: {why}"),
        }
    }
}

/// Fleet counters. Everything here describes *how* the sweep ran (host
/// conditions, chaos, recovery); none of it touches the merged output,
/// which is deterministic by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Work units in the sweep.
    pub units: usize,
    /// Units whose results were loaded from checkpoints (never
    /// re-executed).
    pub units_resumed: usize,
    /// Units completed, including resumed ones.
    pub units_completed: usize,
    /// Units that degraded to in-process execution (spawn failure,
    /// exhausted retries, or no worker command configured).
    pub units_inprocess: usize,
    /// Worker subprocesses spawned.
    pub dispatches: u64,
    /// Worker attempts that exited non-zero or died to a signal.
    pub crashes: u64,
    /// Worker attempts killed at the per-unit deadline.
    pub hangs: u64,
    /// Worker attempts with corrupt/truncated/miscounted output.
    pub poisoned: u64,
    /// Individual output lines that failed validation.
    pub poisoned_lines: u64,
    /// Worker attempts that could not be spawned.
    pub spawn_failures: u64,
    /// Speculative duplicates issued for straggling units.
    pub straggler_duplicates: u64,
    /// Results discarded because another copy of the unit finished first.
    pub straggler_discards: u64,
    /// Chaos: workers killed mid-unit.
    pub chaos_kills: u64,
    /// Chaos: garbage lines inserted into worker output.
    pub chaos_garbage: u64,
    /// Chaos: output deliveries delayed.
    pub chaos_delays: u64,
}

impl FleetStats {
    /// One-line machine-greppable rendering (the `fleet_run` stderr
    /// summary).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "fleet: units={} completed={} resumed={} executed={} inprocess={} \
             dispatches={} crashes={} hangs={} poisoned={} poisoned_lines={} \
             spawn_failures={} stragglers={} discards={} \
             chaos_kills={} chaos_garbage={} chaos_delays={}",
            self.units,
            self.units_completed,
            self.units_resumed,
            self.units_completed - self.units_resumed,
            self.units_inprocess,
            self.dispatches,
            self.crashes,
            self.hangs,
            self.poisoned,
            self.poisoned_lines,
            self.spawn_failures,
            self.straggler_duplicates,
            self.straggler_discards,
            self.chaos_kills,
            self.chaos_garbage,
            self.chaos_delays,
        )
    }
}

/// What a fleet sweep produced.
#[derive(Clone, Debug)]
pub struct FleetOutput {
    /// Deterministic report lines in submission order (global `case`
    /// indices) — byte-identical to `run_specs --shard 0/1` over the same
    /// list. Empty when `interrupted`.
    pub lines: Vec<String>,
    /// Counters.
    pub stats: FleetStats,
    /// True when [`FleetOpts::stop_after`] fired: the sweep stopped early
    /// with its completed units checkpointed for a later `resume`.
    pub interrupted: bool,
}

// ---------------------------------------------------------------------
// Chaos: the coordinator's own seeded fault plan
// ---------------------------------------------------------------------

/// A coordinator-injected fault for one `(seed, unit, attempt)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Kill the worker right after feeding it the unit.
    KillWorker,
    /// Insert a garbage line into the worker's output stream.
    GarbageLine,
    /// Delay delivery of the worker's output.
    DelayOutput,
}

/// SplitMix64: a tiny, deterministic, well-mixed hash for chaos decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The chaos decision for one dispatch attempt: a pure function of
/// `(seed, unit, attempt)`, so CI runs are reproducible. Faults fire on
/// first attempts only — recovery therefore always converges, and a
/// re-dispatched unit runs clean.
#[must_use]
pub fn chaos_action(seed: u64, unit: usize, attempt: u64) -> Option<ChaosAction> {
    if attempt != 0 {
        return None;
    }
    let h = splitmix64(seed ^ (unit as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    match h % 4 {
        0 => Some(ChaosAction::KillWorker),
        1 => Some(ChaosAction::GarbageLine),
        2 => Some(ChaosAction::DelayOutput),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

/// The checkpoint session key: a hash of every spec's canonical JSON plus
/// the unit size, so a resumed sweep with a different list or different
/// unit boundaries can never pick up a stale checkpoint.
#[must_use]
pub fn session_key(specs: &[RunSpec], unit_size: usize) -> u64 {
    let mut text = format!("fleet-v1:unit={unit_size};");
    for spec in specs {
        text.push_str(&spec.to_json().to_string());
        text.push('\n');
    }
    json::fnv1a(text.as_bytes())
}

fn unit_ckpt_path(session_dir: &std::path::Path, unit: usize) -> PathBuf {
    session_dir.join(format!("unit-{unit:05}.ckpt"))
}

static CKPT_TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes one completed unit's lines atomically (tmp + rename; tmp names
/// carry pid and a process-global nonce so concurrent coordinators sharing
/// a checkpoint root never collide). I/O failures are swallowed: a
/// checkpoint that cannot be written merely means that unit is re-executed
/// on resume.
fn write_unit_ckpt(session_dir: &std::path::Path, unit: usize, first: usize, lines: &[String]) {
    if fs::create_dir_all(session_dir).is_err() {
        return;
    }
    let header = Json::obj(vec![
        ("unit", Json::u64(unit as u64)),
        ("first", Json::u64(first as u64)),
        ("lines", Json::u64(lines.len() as u64)),
    ]);
    let mut text = header.to_string();
    text.push('\n');
    for line in lines {
        text.push_str(line);
        text.push('\n');
    }
    let path = unit_ckpt_path(session_dir, unit);
    let tmp = session_dir.join(format!(
        "unit-{unit:05}.tmp.{}.{}",
        std::process::id(),
        CKPT_TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, &path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Loads one unit's checkpoint, re-validating the header and every line
/// (parses as JSON, `case` field equals the expected global index). A
/// torn, corrupt or mismatched checkpoint reads as absent — the unit is
/// simply re-executed.
fn load_unit_ckpt(
    session_dir: &std::path::Path,
    unit: usize,
    globals: Range<usize>,
) -> Option<Vec<String>> {
    let text = fs::read_to_string(unit_ckpt_path(session_dir, unit)).ok()?;
    let mut lines = text.lines();
    let header = json::parse(lines.next()?).ok()?;
    if header.get("unit")?.as_u64().ok()? != unit as u64
        || header.get("first")?.as_u64().ok()? != globals.start as u64
        || header.get("lines")?.as_u64().ok()? != globals.len() as u64
    {
        return None;
    }
    let body: Vec<&str> = lines.collect();
    if body.len() != globals.len() {
        return None;
    }
    let mut out = Vec::with_capacity(body.len());
    for (line, global) in body.iter().zip(globals) {
        let parsed = json::parse(line).ok()?;
        if parsed.get("case")?.as_u64().ok()? != global as u64 {
            return None;
        }
        parsed.get("name")?;
        out.push((*line).to_string());
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Worker output validation
// ---------------------------------------------------------------------

/// Validates one worker attempt's stdout for a unit covering `globals`
/// and rewrites the local `case` indices to global submission indices.
/// The rewrite is textual — everything after the `case` field is the
/// worker's bytes verbatim — so fleet output merges byte-identically with
/// single-process output.
///
/// # Errors
///
/// Returns a description of the first invalid line (or the line-count
/// mismatch): the attempt is then scored [`UnitOutcome::Poisoned`].
pub fn rewrite_unit_lines(raw: &str, globals: Range<usize>) -> Result<Vec<String>, String> {
    let lines: Vec<&str> = raw.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() != globals.len() {
        return Err(format!(
            "expected {} report lines, got {}",
            globals.len(),
            lines.len()
        ));
    }
    let mut out = Vec::with_capacity(lines.len());
    for (local, (line, global)) in lines.iter().zip(globals).enumerate() {
        let parsed = json::parse(line).map_err(|e| format!("line {local}: {e}"))?;
        let case = parsed
            .get("case")
            .and_then(|c| c.as_u64().ok())
            .ok_or_else(|| format!("line {local}: missing case index"))?;
        if case != local as u64 {
            return Err(format!("line {local}: out-of-order case index {case}"));
        }
        if parsed.get("name").is_none() || parsed.get("outcome").is_none() {
            return Err(format!("line {local}: not a report line"));
        }
        let prefix = format!("{{\"case\":{local},");
        let rest = line
            .strip_prefix(prefix.as_str())
            .ok_or_else(|| format!("line {local}: non-canonical case prefix"))?;
        out.push(format!("{{\"case\":{global},{rest}"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct UnitState {
    attempts: u64,
    inflight: usize,
    started: Option<Instant>,
    duplicated: bool,
    done: bool,
}

impl UnitState {
    /// Retires one in-flight attempt. Every dispatch/speculation/fallback
    /// increments `inflight` exactly once and settles exactly once, so the
    /// count never reaches zero with attempts outstanding; the saturation
    /// is defence in depth — a miscount must never panic (debug) or wrap
    /// (release) mid-sweep, because aborting is the one thing the
    /// coordinator is not allowed to do.
    fn retire_attempt(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
    }
}

#[derive(Debug, Default)]
struct CoordState {
    ready: VecDeque<usize>,
    delayed: Vec<(Instant, usize)>,
    unit: Vec<UnitState>,
    results: Vec<Option<Vec<String>>>,
    completed: usize,
    stopped: bool,
    stats: FleetStats,
}

/// What a slot thread decided to do next.
enum Job {
    /// Dispatch this unit (attempt number for backoff/chaos).
    Dispatch(usize, u64),
    /// Speculatively duplicate this in-flight straggler.
    Speculate(usize, u64),
    /// Nothing dispatchable right now; sleep briefly and look again.
    Idle,
    /// The sweep is over (all units completed, or stop_after fired).
    Exit,
}

/// Runs the sweep. See the module docs for the failure model; the merged
/// lines are byte-identical to a single-process `--shard 0/1` run of the
/// same list whenever the sweep runs to completion.
///
/// # Panics
///
/// Panics only on coordinator-internal invariant violations (a completed
/// unit with no result), never on worker behaviour.
#[must_use]
pub fn run_fleet(registry: &Registry, specs: &[RunSpec], opts: &FleetOpts) -> FleetOutput {
    let unit_size = opts.unit_size.max(1);
    let units: Vec<Range<usize>> = (0..specs.len())
        .step_by(unit_size)
        .map(|start| start..(start + unit_size).min(specs.len()))
        .collect();
    let session_dir = opts
        .checkpoint_dir
        .as_ref()
        .map(|root| root.join(format!("{:016x}", session_key(specs, unit_size))));

    let mut state = CoordState {
        unit: vec![UnitState::default(); units.len()],
        results: vec![None; units.len()],
        ..CoordState::default()
    };
    state.stats.units = units.len();

    // Resume: load valid checkpoints first; their units never dispatch.
    if opts.resume {
        if let Some(dir) = &session_dir {
            for (u, range) in units.iter().enumerate() {
                if let Some(lines) = load_unit_ckpt(dir, u, range.clone()) {
                    state.results[u] = Some(lines);
                    state.unit[u].done = true;
                    state.completed += 1;
                    state.stats.units_resumed += 1;
                    state.stats.units_completed += 1;
                }
            }
        }
    }
    for u in 0..units.len() {
        if !state.unit[u].done {
            state.ready.push_back(u);
        }
    }
    if let (Some(stop), false) = (opts.stop_after, state.completed >= units.len()) {
        if state.completed >= stop {
            state.stopped = true;
        }
    }

    let shared = Mutex::new(state);
    let slots = opts.workers.max(1);
    std::thread::scope(|scope| {
        for slot in 0..slots {
            let shared = &shared;
            let units = &units;
            let session_dir = session_dir.as_deref();
            scope.spawn(move || {
                // A slot whose spawns fail degrades permanently to
                // in-process execution — "fewer workers" without ever
                // stalling the sweep.
                let mut subprocess_ok = true;
                let _ = slot;
                loop {
                    let job = next_job(shared, opts);
                    match job {
                        Job::Exit => break,
                        Job::Idle => {
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        Job::Dispatch(u, attempt) | Job::Speculate(u, attempt) => {
                            let range = units[u].clone();
                            let outcome = if subprocess_ok && opts.worker.is_some() {
                                run_subprocess_attempt(
                                    shared,
                                    specs,
                                    range.clone(),
                                    opts,
                                    u,
                                    attempt,
                                )
                            } else {
                                UnitOutcome::SpawnFailed("slot degraded".to_string())
                            };
                            if matches!(outcome, UnitOutcome::SpawnFailed(_)) {
                                if opts.worker.is_some() && subprocess_ok {
                                    subprocess_ok = false;
                                    let mut s = lock(shared);
                                    s.stats.spawn_failures += 1;
                                }
                                // Fully-degraded path: run the unit right
                                // here, in-process. execute_spec confines
                                // guest panics to the report, so this
                                // always yields valid lines. A speculative
                                // copy of the unit may have completed it
                                // while we executed, so the settle must
                                // re-check `done` like any other attempt.
                                let lines = run_inprocess(
                                    registry,
                                    specs,
                                    range.clone(),
                                    opts.case_retries,
                                );
                                let mut s = lock(shared);
                                s.unit[u].retire_attempt();
                                s.stats.units_inprocess += 1;
                                if s.unit[u].done {
                                    s.stats.straggler_discards += 1;
                                } else {
                                    finish_unit(&mut s, u, range.start, lines, session_dir, opts);
                                }
                                continue;
                            }
                            settle_attempt(
                                shared,
                                registry,
                                specs,
                                u,
                                range,
                                outcome,
                                opts,
                                session_dir,
                            );
                        }
                    }
                }
            });
        }
    });

    let mut state = shared
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let interrupted = state.stopped && state.completed < units.len();
    let lines = if interrupted {
        Vec::new()
    } else {
        // A finished sweep's checkpoints have served their purpose.
        if let Some(dir) = &session_dir {
            let _ = fs::remove_dir_all(dir);
        }
        state
            .results
            .iter_mut()
            .flat_map(|r| r.take().expect("every unit completed"))
            .collect()
    };
    FleetOutput {
        lines,
        stats: state.stats,
        interrupted,
    }
}

fn lock<'a>(shared: &'a Mutex<CoordState>) -> std::sync::MutexGuard<'a, CoordState> {
    shared
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Picks the next job for an idle slot: promote due backoffs, dispatch
/// ready units, then consider straggler duplication, then idle/exit.
fn next_job(shared: &Mutex<CoordState>, opts: &FleetOpts) -> Job {
    let mut s = lock(shared);
    if s.stopped || s.completed == s.unit.len() {
        return Job::Exit;
    }
    let now = Instant::now();
    let mut due: Vec<usize> = Vec::new();
    s.delayed.retain(|(ready_at, u)| {
        if *ready_at <= now {
            due.push(*u);
            false
        } else {
            true
        }
    });
    // Units re-enter the queue in id order so re-dispatch is fair.
    due.sort_unstable();
    for u in due {
        s.ready.push_back(u);
    }
    if let Some(u) = s.ready.pop_front() {
        let attempt = s.unit[u].attempts;
        s.unit[u].inflight += 1;
        if s.unit[u].started.is_none() {
            s.unit[u].started = Some(now);
        }
        return Job::Dispatch(u, attempt);
    }
    // Nothing pending: speculate on the longest-running straggler, once.
    let straggler = (0..s.unit.len())
        .filter(|&u| {
            let st = &s.unit[u];
            !st.done
                && st.inflight > 0
                && !st.duplicated
                && st
                    .started
                    .is_some_and(|t| t.elapsed() >= opts.straggler_after)
        })
        .min_by_key(|&u| s.unit[u].started);
    if let Some(u) = straggler {
        let attempt = s.unit[u].attempts;
        s.unit[u].duplicated = true;
        s.unit[u].inflight += 1;
        s.stats.straggler_duplicates += 1;
        return Job::Speculate(u, attempt);
    }
    Job::Idle
}

/// Applies one finished attempt to the shared state: first valid result
/// wins; failures cost an attempt and either back off or degrade to
/// in-process execution.
#[allow(clippy::too_many_arguments)]
fn settle_attempt(
    shared: &Mutex<CoordState>,
    registry: &Registry,
    specs: &[RunSpec],
    u: usize,
    range: Range<usize>,
    outcome: UnitOutcome,
    opts: &FleetOpts,
    session_dir: Option<&std::path::Path>,
) {
    let run_fallback = {
        let mut s = lock(shared);
        s.unit[u].retire_attempt();
        match outcome {
            UnitOutcome::Completed(lines) => {
                if s.unit[u].done {
                    s.stats.straggler_discards += 1;
                } else {
                    finish_unit(&mut s, u, range.start, lines, session_dir, opts);
                }
                false
            }
            failed => {
                match &failed {
                    UnitOutcome::Crashed(_) => s.stats.crashes += 1,
                    UnitOutcome::Hung => s.stats.hangs += 1,
                    UnitOutcome::Poisoned(why) => {
                        s.stats.poisoned += 1;
                        // Count at least the offending line; a miscount
                        // poisons the attempt, not individual lines.
                        if why.starts_with("line ") {
                            s.stats.poisoned_lines += 1;
                        }
                    }
                    _ => {}
                }
                if s.unit[u].done || s.unit[u].inflight > 0 {
                    // Another copy finished (or is still running); this
                    // failure costs nothing further.
                    false
                } else {
                    s.unit[u].attempts += 1;
                    let attempt = s.unit[u].attempts;
                    if attempt <= opts.retries {
                        let backoff = retry_backoff(attempt);
                        s.delayed.push((Instant::now() + backoff, u));
                        false
                    } else {
                        // Exhausted: degrade to in-process, outside the lock.
                        s.unit[u].inflight += 1;
                        true
                    }
                }
            }
        }
    };
    if run_fallback {
        let lines = run_inprocess(registry, specs, range.clone(), opts.case_retries);
        let mut s = lock(shared);
        s.unit[u].retire_attempt();
        s.stats.units_inprocess += 1;
        if s.unit[u].done {
            s.stats.straggler_discards += 1;
        } else {
            finish_unit(&mut s, u, range.start, lines, session_dir, opts);
        }
    }
}

/// Records a completed unit (under the coordinator lock) and checkpoints
/// it. Fires the stop_after interruption when the threshold is reached.
fn finish_unit(
    s: &mut CoordState,
    u: usize,
    first: usize,
    lines: Vec<String>,
    session_dir: Option<&std::path::Path>,
    opts: &FleetOpts,
) {
    if let Some(dir) = session_dir {
        write_unit_ckpt(dir, u, first, &lines);
    }
    // `inflight` is deliberately left alone: a losing speculative copy
    // (or an in-flight fallback) of this unit may still be running, and it
    // retires its own count when it settles. Forcing zero here would make
    // that late settlement underflow the counter.
    s.results[u] = Some(lines);
    s.unit[u].done = true;
    s.completed += 1;
    s.stats.units_completed += 1;
    if let Some(stop) = opts.stop_after {
        if s.completed >= stop && s.completed < s.unit.len() {
            s.stopped = true;
        }
    }
}

/// Executes a unit on the calling thread — the fully-degraded tier. Each
/// spec runs through [`execute_spec`] (panic isolation included) with the
/// harness per-case transient-retry policy, and is rendered as its
/// deterministic line with the global index, exactly the bytes a healthy
/// worker running `--retries case_retries` would have produced.
fn run_inprocess(
    registry: &Registry,
    specs: &[RunSpec],
    range: Range<usize>,
    case_retries: u64,
) -> Vec<String> {
    range
        .map(|global| {
            let mut report = execute_spec(registry, &specs[global]);
            let mut attempts = 0u64;
            while attempts < case_retries && outcome_is_transient(&report.outcome) {
                attempts += 1;
                std::thread::sleep(retry_backoff(attempts));
                report = execute_spec(registry, &specs[global]);
            }
            report.retries = attempts;
            report.quarantined = attempts > 0 && outcome_is_transient(&report.outcome);
            report.to_json_deterministic(global).to_string()
        })
        .collect()
}

/// One subprocess dispatch: spawn, feed, watch the deadline, collect,
/// validate. Chaos faults are injected here when armed.
fn run_subprocess_attempt(
    shared: &Mutex<CoordState>,
    specs: &[RunSpec],
    range: Range<usize>,
    opts: &FleetOpts,
    unit: usize,
    attempt: u64,
) -> UnitOutcome {
    let Some(worker) = &opts.worker else {
        return UnitOutcome::SpawnFailed("no worker command".to_string());
    };
    let chaos = opts
        .chaos
        .and_then(|seed| chaos_action(seed, unit, attempt));
    let mut command = Command::new(&worker.program);
    command.args(&worker.args);
    if opts.case_retries > 0 {
        // The per-case transient-retry budget rides along to the worker so
        // its report lines carry the same retry metadata a single-process
        // `--retries` session would have produced.
        command.args(["--retries", &opts.case_retries.to_string()]);
    }
    let mut child = match command
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return UnitOutcome::SpawnFailed(e.to_string()),
    };
    {
        let mut s = lock(shared);
        s.stats.dispatches += 1;
        match chaos {
            Some(ChaosAction::KillWorker) => s.stats.chaos_kills += 1,
            Some(ChaosAction::GarbageLine) => s.stats.chaos_garbage += 1,
            Some(ChaosAction::DelayOutput) => s.stats.chaos_delays += 1,
            None => {}
        }
    }
    let mut input = String::new();
    for global in range.clone() {
        input.push_str(&specs[global].to_json().to_string());
        input.push('\n');
    }
    let stdin = child.stdin.take();
    let stdout = child.stdout.take();
    // Feed stdin and drain stdout off-thread so a wedged worker can never
    // deadlock the coordinator on a full pipe; killing the child unblocks
    // both directions (EPIPE / EOF).
    let io = std::thread::spawn(move || {
        if let Some(mut stdin) = stdin {
            let _ = stdin.write_all(input.as_bytes());
        }
        let mut raw = Vec::new();
        if let Some(mut stdout) = stdout {
            let _ = stdout.read_to_end(&mut raw);
        }
        raw
    });
    let mut chaos_killed = false;
    if chaos == Some(ChaosAction::KillWorker) {
        let _ = child.kill();
        chaos_killed = true;
    }
    // Hang detection: poll for exit until the unit deadline, then kill.
    let started = Instant::now();
    let mut hung = false;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if started.elapsed() >= opts.unit_deadline {
                    let _ = child.kill();
                    hung = true;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return UnitOutcome::Crashed(format!("wait failed: {e}"));
            }
        }
    };
    // Join the I/O thread only on a clean exit. A killed worker's
    // *grandchildren* (e.g. a shell's `sleep`) can inherit the stdout pipe
    // and keep it open long after the worker is dead; blocking on
    // `read_to_end` then would turn a detected hang back into a real one.
    // The detached thread exits on its own once the pipe finally closes.
    if hung {
        return UnitOutcome::Hung;
    }
    if chaos_killed || !status.success() {
        return UnitOutcome::Crashed(format!("worker exit: {status}"));
    }
    let raw = io.join().unwrap_or_default();
    if chaos == Some(ChaosAction::DelayOutput) {
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut text = match String::from_utf8(raw) {
        Ok(text) => text,
        Err(_) => return UnitOutcome::Poisoned("line 0: non-UTF-8 output".to_string()),
    };
    if chaos == Some(ChaosAction::GarbageLine) {
        text.insert_str(0, "{\"chaos\":tor\n");
    }
    match rewrite_unit_lines(&text, range) {
        Ok(lines) => UnitOutcome::Completed(lines),
        Err(why) => UnitOutcome::Poisoned(why),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Harness, RunSpec, SessionOpts};
    use crate::spec::ProgramSpec;
    use cheri_isa::codegen::CodegenOpts;
    use cheri_kernel::AbiMode;
    use std::sync::atomic::AtomicUsize;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "cheriabi-fleet-test-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::SeqCst)
            ));
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn exit_specs(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| {
                RunSpec::new(
                    format!("case-{i}"),
                    ProgramSpec::Exit { code: 0 },
                    CodegenOpts::purecap(),
                    AbiMode::CheriAbi,
                )
                .with_seed(i as u64)
            })
            .collect()
    }

    fn golden_lines(registry: &Registry, specs: &[RunSpec]) -> Vec<String> {
        Harness::new(1)
            .run(registry, specs)
            .iter()
            .enumerate()
            .map(|(i, r)| r.to_json_deterministic(i).to_string())
            .collect()
    }

    fn sh_worker(script: &str) -> WorkerCmd {
        WorkerCmd {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".to_string(), script.to_string()],
        }
    }

    fn base_opts(tmp: &TempDir) -> FleetOpts {
        FleetOpts {
            workers: 2,
            unit_size: 3,
            unit_deadline: Duration::from_secs(30),
            retries: 1,
            checkpoint_dir: Some(tmp.0.clone()),
            straggler_after: Duration::from_secs(60),
            ..FleetOpts::default()
        }
    }

    #[test]
    fn in_process_fleet_matches_the_single_process_run() {
        let tmp = TempDir::new("inproc");
        let registry = Registry::builtin();
        let specs = exit_specs(10);
        let opts = base_opts(&tmp);
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines, golden_lines(&registry, &specs));
        assert_eq!(out.stats.units, 4);
        assert_eq!(out.stats.units_completed, 4);
        assert_eq!(out.stats.units_inprocess, 4, "no worker => all in-process");
        assert_eq!(out.stats.dispatches, 0);
    }

    #[test]
    fn a_crashing_worker_degrades_to_in_process_and_still_merges() {
        let tmp = TempDir::new("crash");
        let registry = Registry::builtin();
        let specs = exit_specs(6);
        let opts = FleetOpts {
            worker: Some(sh_worker("cat > /dev/null; exit 7")),
            ..base_opts(&tmp)
        };
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines, golden_lines(&registry, &specs));
        assert!(out.stats.crashes > 0, "{:?}", out.stats);
        assert_eq!(out.stats.units_inprocess, 2, "both units fell back");
    }

    #[test]
    fn poisoned_output_is_counted_and_recovered() {
        let tmp = TempDir::new("poison");
        let registry = Registry::builtin();
        let specs = exit_specs(6);
        let opts = FleetOpts {
            worker: Some(sh_worker("cat > /dev/null; echo '{torn json'")),
            ..base_opts(&tmp)
        };
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines, golden_lines(&registry, &specs));
        assert!(out.stats.poisoned > 0, "{:?}", out.stats);
        assert_eq!(out.stats.units_inprocess, 2);
    }

    #[test]
    fn a_hung_worker_is_killed_at_the_deadline() {
        let tmp = TempDir::new("hang");
        let registry = Registry::builtin();
        let specs = exit_specs(3);
        let opts = FleetOpts {
            workers: 1,
            worker: Some(sh_worker("sleep 600")),
            unit_deadline: Duration::from_millis(80),
            retries: 0,
            ..base_opts(&tmp)
        };
        let started = Instant::now();
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines, golden_lines(&registry, &specs));
        assert!(out.stats.hangs >= 1, "{:?}", out.stats);
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "the kill must not wait for the worker's sleep"
        );
    }

    #[test]
    fn an_unspawnable_worker_degrades_without_failing() {
        let tmp = TempDir::new("nospawn");
        let registry = Registry::builtin();
        let specs = exit_specs(4);
        let opts = FleetOpts {
            worker: Some(WorkerCmd {
                program: PathBuf::from("/no/such/binary"),
                args: Vec::new(),
            }),
            ..base_opts(&tmp)
        };
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines, golden_lines(&registry, &specs));
        assert!(out.stats.spawn_failures >= 1);
        assert_eq!(out.stats.units_inprocess, 2);
    }

    #[test]
    fn a_losing_straggler_copy_settles_after_the_winner_without_a_miscount() {
        let tmp = TempDir::new("straggler");
        let registry = Registry::builtin();
        let specs = exit_specs(1);
        // The first copy to start grabs the lock directory and stalls; the
        // speculative duplicate loses the mkdir race, answers immediately
        // and wins. The stalled loser then settles *after* finish_unit
        // already recorded the winner — the interleaving that used to
        // force `inflight` to zero and underflow on the loser's settle.
        let line = "{\"case\":0,\"name\":\"w\",\"outcome\":{\"outcome\":\"deadline\"}}";
        let script = format!(
            "cat > /dev/null; if mkdir {} 2>/dev/null; then sleep 0.5; fi; echo '{line}'",
            tmp.0.join("lock").display(),
        );
        let opts = FleetOpts {
            workers: 2,
            unit_size: 1,
            straggler_after: Duration::from_millis(1),
            worker: Some(sh_worker(&script)),
            checkpoint_dir: None,
            ..FleetOpts::default()
        };
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines, vec![line.to_string()]);
        assert_eq!(out.stats.units_completed, 1);
        assert_eq!(
            out.stats.straggler_duplicates, 1,
            "the idle slot speculated: {:?}",
            out.stats
        );
        assert_eq!(
            out.stats.straggler_discards, 1,
            "the loser settled as a discard, not a miscount: {:?}",
            out.stats
        );
    }

    #[test]
    fn case_retries_apply_in_process_and_match_the_session_bytes() {
        let tmp = TempDir::new("case-retries");
        let registry = Registry::builtin();
        let mut specs = exit_specs(5);
        // Boom panics deterministically, so it spends the whole per-case
        // retry budget and its report line carries the retry metadata.
        specs.push(
            RunSpec::new(
                "boom",
                ProgramSpec::Boom,
                CodegenOpts::purecap(),
                AbiMode::CheriAbi,
            )
            .with_seed(99),
        );
        let opts = FleetOpts {
            case_retries: 2,
            ..base_opts(&tmp)
        };
        let out = run_fleet(&registry, &specs, &opts);
        let session = Harness::new(1).run_session(
            &registry,
            &specs,
            &SessionOpts {
                retries: 2,
                ..SessionOpts::default()
            },
        );
        let golden: Vec<String> = session
            .reports
            .iter()
            .map(|(i, r)| r.to_json_deterministic(*i).to_string())
            .collect();
        assert_eq!(out.lines, golden, "fleet --retries matches the session");
        assert!(
            golden.iter().any(|l| l.contains("\"retries\":2")),
            "the transient case actually retried: {golden:?}"
        );
    }

    #[test]
    fn case_retries_are_forwarded_to_worker_commands() {
        let tmp = TempDir::new("retries-fwd");
        let registry = Registry::builtin();
        let specs = exit_specs(1);
        // `sh -c script arg0 arg1` binds the coordinator-appended
        // `--retries 3` to $0/$1; the worker echoes $1 back in its report
        // line, proving the flag reached the command line.
        let script = "cat > /dev/null; \
                      echo \"{\\\"case\\\":0,\\\"name\\\":\\\"got $1\\\",\
                      \\\"outcome\\\":{\\\"outcome\\\":\\\"deadline\\\"}}\"";
        let opts = FleetOpts {
            workers: 1,
            unit_size: 1,
            case_retries: 3,
            worker: Some(sh_worker(script)),
            checkpoint_dir: Some(tmp.0.clone()),
            ..FleetOpts::default()
        };
        let out = run_fleet(&registry, &specs, &opts);
        assert!(!out.interrupted);
        assert_eq!(out.lines.len(), 1);
        assert!(
            out.lines[0].contains("\"name\":\"got 3\""),
            "worker saw --retries 3: {:?}",
            out.lines
        );
    }

    #[test]
    fn stop_after_interrupts_and_resume_redoes_zero_units() {
        let tmp = TempDir::new("resume");
        let registry = Registry::builtin();
        let specs = exit_specs(10); // 4 units of 3
        let opts = FleetOpts {
            workers: 1,
            stop_after: Some(2),
            ..base_opts(&tmp)
        };
        let first = run_fleet(&registry, &specs, &opts);
        assert!(first.interrupted);
        assert!(first.lines.is_empty());
        assert!(first.stats.units_completed >= 2);
        let done_first = first.stats.units_completed;
        let resumed = run_fleet(
            &registry,
            &specs,
            &FleetOpts {
                stop_after: None,
                resume: true,
                ..opts
            },
        );
        assert!(!resumed.interrupted);
        assert_eq!(resumed.lines, golden_lines(&registry, &specs));
        assert_eq!(
            resumed.stats.units_resumed, done_first,
            "every checkpointed unit loads; zero are redone"
        );
        assert_eq!(
            resumed.stats.units_completed - resumed.stats.units_resumed,
            4 - done_first
        );
        // A finished sweep cleans up its session directory.
        let session = tmp
            .0
            .join(format!("{:016x}", session_key(&specs, opts.unit_size)));
        assert!(
            !session.exists(),
            "completed sweeps clean their checkpoints"
        );
    }

    #[test]
    fn corrupt_checkpoints_read_as_absent() {
        let tmp = TempDir::new("ckpt-corrupt");
        let registry = Registry::builtin();
        let specs = exit_specs(6);
        let opts = FleetOpts {
            workers: 1,
            stop_after: Some(1),
            unit_size: 3,
            ..base_opts(&tmp)
        };
        let first = run_fleet(&registry, &specs, &opts);
        assert!(first.interrupted);
        let session = tmp.0.join(format!("{:016x}", session_key(&specs, 3)));
        // Corrupt every checkpoint the interrupted run left behind.
        for entry in fs::read_dir(&session).expect("session dir") {
            let path = entry.expect("entry").path();
            fs::write(&path, "{ torn").expect("corrupt");
        }
        let resumed = run_fleet(
            &registry,
            &specs,
            &FleetOpts {
                stop_after: None,
                resume: true,
                ..opts
            },
        );
        assert!(!resumed.interrupted);
        assert_eq!(resumed.stats.units_resumed, 0, "corrupt ckpts are ignored");
        assert_eq!(resumed.lines, golden_lines(&registry, &specs));
    }

    #[test]
    fn a_stale_session_never_serves_a_different_spec_list() {
        let specs_a = exit_specs(6);
        let mut specs_b = exit_specs(6);
        specs_b[0] = specs_b[0].clone().with_seed(99);
        assert_ne!(session_key(&specs_a, 3), session_key(&specs_b, 3));
        assert_ne!(
            session_key(&specs_a, 3),
            session_key(&specs_a, 2),
            "unit boundaries are part of the session key"
        );
    }

    #[test]
    fn chaos_decisions_are_deterministic_and_first_attempt_only() {
        for seed in [0u64, 7, 42, 1729] {
            for unit in 0..32 {
                assert_eq!(
                    chaos_action(seed, unit, 0),
                    chaos_action(seed, unit, 0),
                    "pure function"
                );
                assert_eq!(chaos_action(seed, unit, 1), None, "retries run clean");
            }
            // Every action kind appears somewhere in a 32-unit sweep.
            let all: Vec<_> = (0..32).filter_map(|u| chaos_action(seed, u, 0)).collect();
            assert!(all.contains(&ChaosAction::KillWorker), "seed {seed}");
            assert!(all.contains(&ChaosAction::GarbageLine), "seed {seed}");
            assert!(all.contains(&ChaosAction::DelayOutput), "seed {seed}");
        }
    }

    #[test]
    fn rewrite_rejects_corrupt_lines_and_preserves_bytes() {
        let good = "{\"case\":0,\"name\":\"a\",\"outcome\":{\"outcome\":\"deadline\"}}\n\
                    {\"case\":1,\"name\":\"b\",\"outcome\":{\"outcome\":\"deadline\"}}\n";
        let lines = rewrite_unit_lines(good, 10..12).expect("valid");
        assert_eq!(
            lines[0],
            "{\"case\":10,\"name\":\"a\",\"outcome\":{\"outcome\":\"deadline\"}}"
        );
        assert_eq!(
            lines[1],
            "{\"case\":11,\"name\":\"b\",\"outcome\":{\"outcome\":\"deadline\"}}"
        );
        // Truncated output: wrong line count.
        assert!(rewrite_unit_lines(good, 10..13).is_err());
        // Torn JSON.
        assert!(rewrite_unit_lines("{torn\n", 0..1).is_err());
        // Out-of-order case index.
        let swapped = "{\"case\":1,\"name\":\"a\",\"outcome\":{\"outcome\":\"deadline\"}}\n";
        assert!(rewrite_unit_lines(swapped, 0..1).is_err());
        // A non-report JSON line.
        assert!(rewrite_unit_lines("{\"case\":0}\n", 0..1).is_err());
    }

    #[test]
    fn summary_line_is_machine_greppable() {
        let stats = FleetStats {
            units: 8,
            units_completed: 8,
            units_resumed: 3,
            ..FleetStats::default()
        };
        let line = stats.summary_line();
        assert!(line.contains("units=8"), "{line}");
        assert!(line.contains("resumed=3"), "{line}");
        assert!(line.contains("executed=5"), "{line}");
    }
}
