//! # cheri-corpus — the compatibility/test-suite corpus (Tables 1 & 2)
//!
//! The paper validates CheriABI by running the FreeBSD base-system test
//! suite (3835 tests), the PostgreSQL `pg_regress` suite (167 tests) and
//! the libc++ suite under both ABIs (Table 1), and by classifying every
//! source change the port needed (Table 2). We cannot port 800 UNIX
//! programs, so this crate builds a **generated corpus** with the same
//! structure:
//!
//! * [`families`] — parameterised families of guest test programs
//!   (string/memory ops, sorting, allocation, syscalls, signals, pipes,
//!   shm, ioctl/sysctl, ...), most of which pass under both ABIs, plus
//!   *seeded* programs containing exactly the real-world C idioms of
//!   Table 2 (pointer-as-integer truncation, XOR pointer tricks, integer
//!   provenance laundering, monotonicity assumptions, hard-coded pointer
//!   sizes, under-alignment, variadic/calling-convention abuse) and the
//!   §5.4 latent-bug reproductions (buffer underrun on empty input,
//!   undersized `ioctl` buffer, off-by-one `strvis`-style overflow);
//! * [`minidb`] — a small relational engine (hash table + record heap +
//!   catalog files) written as guest code: its `pg_regress`-like suite is
//!   the Table 1 "PostgreSQL" row and its `initdb` program is the §5.2
//!   macro-benchmark;
//! * [`compat`] — the Table 2 taxonomy: a static inventory of the changes
//!   this port required, and a dynamic classifier mapping observed traps
//!   back to categories;
//! * [`suite`] — the runner producing pass/fail/skip tables per ABI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod compat;
pub mod families;
pub mod minidb;
pub mod scenario;
pub mod suite;

pub use attacks::{AttackCase, Verdict};
pub use compat::{Category, ChangeRecord, Component, STATIC_CHANGES};
pub use suite::{FailureKind, SuiteOutcome, SuiteResult, TestCase, TestExpectation};
