//! Trace templates: the register-allocating third execution tier.
//!
//! When a superblock re-entry cache slot keeps hitting (the guard —
//! same pc, same translation epoch, same exact PCC — keeps passing), the
//! block is *promoted*: starting from its entry, the compiler walks the
//! decoded region forward through fall-through control flow and compiles
//! the longest prefix of **pure-integer** instructions (per the static
//! [`cheri_sem::RegEffects`] metadata declared beside every handler) into
//! a [`Template`] — a closure-free straight-line plan in which every hot
//! guest register lives in a dense local slot for the whole trace.
//!
//! The trace deliberately crosses superblock boundaries: a conditional
//! branch does not end it. The not-taken path continues in the trace; the
//! taken path becomes a *side exit* carrying the exact retired-instruction
//! count, base-cycle prefix and fetch-event prefix for a departure at that
//! instruction. An unconditional jump back to the trace entry (or a
//! conditional backedge as the final instruction) turns the template into
//! an *internal loop*: guest registers stay resident in locals across
//! iterations and the per-instruction dispatch, `StepCtx` setup and port
//! construction of the superblock machine are all folded away.
//!
//! Soundness leans on one fact: an instruction whose effects clause says
//! [`is_pure_int`](cheri_sem::RegEffects::is_pure_int) touches no memory
//! and no capability state, so it can neither trap nor observe anything
//! outside the integer register file. The entry guard (pc/epoch/PCC) is
//! therefore checked once per template entry and remains valid for the
//! whole execution, however many iterations run. Anything the guard can't
//! cover — a memory access, a capability op, `syscall`/`break` — ends the
//! trace at compile time and re-enters the superblock machine at runtime.
//!
//! Templates are a pure accelerant: retired instructions, base cycles and
//! fetch events (coalesced to cache-line runs, see
//! [`cheri_mem::MemEventRing::record_run`]) are accounted exactly as the
//! superblock tier would, so guest-visible metrics are byte-identical
//! across all three tiers — which `interp_throughput` and the cpu-level
//! mode-matrix tests enforce.

use crate::region::DecodedRegion;
use cheri_isa::{IReg, Instr};
use cheri_mem::FRAME_SIZE;
use cheri_sem::ops::reg_effects;

/// Local slot count: the two pseudo-slots below plus up to 31 guest
/// registers (`$0` never takes a slot).
pub(crate) const MAX_LOCALS: usize = 34;
/// Local slot that always reads 0 (`$zero` reads land here; never written).
const ZERO: u8 = 0;
/// Local slot that swallows writes to `$zero` (never flushed).
const SCRATCH: u8 = 1;
/// First local slot available to real guest registers.
const FIRST_REG_LOCAL: u8 = 2;

/// Trace length cap, in instructions. Generous: a trace is also clamped
/// to the page boundary and the PCC top, and ends at the first
/// non-pure-int instruction anyway.
const MAX_TRACE: usize = 64;
/// Non-looping traces shorter than this are not worth the entry/exit
/// load/flush traffic; looping traces always qualify.
const MIN_TRACE: usize = 3;
/// Guard hits on one re-entry slot before the block is promoted.
pub(crate) const PROMOTE_THRESHOLD: u32 = 16;

/// Branch condition, evaluated over locals.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `(a as i64) <= 0`
    Lez,
    /// `(a as i64) > 0`
    Gtz,
    /// `(a as i64) < 0`
    Ltz,
    /// `(a as i64) >= 0`
    Gez,
}

impl Cond {
    /// Whether the branch is taken for operand values `a`, `b` — the
    /// exact predicates of the `op_beq`..`op_bgez` handlers.
    #[inline]
    pub(crate) fn taken(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lez => (a as i64) <= 0,
            Cond::Gtz => (a as i64) > 0,
            Cond::Ltz => (a as i64) < 0,
            Cond::Gez => (a as i64) >= 0,
        }
    }
}

/// One compiled trace instruction. Operands are local-slot indices, not
/// guest register numbers; immediates are pre-converted to the exact
/// form the corresponding semantics handler uses (e.g. `li`'s `i64`
/// immediate is already `as u64`, shift amounts already `& 63`).
#[derive(Clone, Copy, Debug)]
pub(crate) enum TOp {
    /// Retires and charges a cycle, nothing else.
    Nop,
    /// `d = imm`
    Li { d: u8, imm: u64 },
    /// `d = s`
    Mov { d: u8, s: u8 },
    /// `d = a (op) b` — the three-register ALU group, with the precise
    /// wrapping / zero-divisor behaviour of the handlers.
    Add { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Sub { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Mul { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    DivU { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    DivS { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    RemU { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    And { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Or { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Xor { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Nor { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Sllv { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Srlv { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Srav { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Slt { d: u8, a: u8, b: u8 },
    /// See [`TOp::Add`].
    Sltu { d: u8, a: u8, b: u8 },
    /// `d = s + imm` (wrapping; `imm` pre-cast to `u64`).
    AddI { d: u8, s: u8, imm: u64 },
    /// `d = s & imm`
    AndI { d: u8, s: u8, imm: u64 },
    /// `d = s | imm`
    OrI { d: u8, s: u8, imm: u64 },
    /// `d = s ^ imm`
    XorI { d: u8, s: u8, imm: u64 },
    /// `d = s << sh` (`sh` pre-masked).
    SllI { d: u8, s: u8, sh: u8 },
    /// `d = s >> sh` (logical).
    SrlI { d: u8, s: u8, sh: u8 },
    /// `d = s >> sh` (arithmetic).
    SraI { d: u8, s: u8, sh: u8 },
    /// `d = (s as i64) < imm`
    SltI { d: u8, s: u8, imm: i64 },
    /// `d = s < imm`
    SltuI { d: u8, s: u8, imm: u64 },
    /// A mid-trace conditional branch: not taken falls through to the
    /// next trace instruction; taken is a **side exit** to `taken_next`
    /// with metrics for exactly the instructions up to and including
    /// this one (index `k` in the ops vector, so `k + 1` retired,
    /// `cum_cycles[k]` base cycles, `k + 1` fetch events).
    Branch {
        /// Condition over `a`, `b`.
        cond: Cond,
        /// First operand local (the sole operand for zero-compares).
        a: u8,
        /// Second operand local ([`ZERO`] for zero-compares).
        b: u8,
        /// Absolute successor pc when taken.
        taken_next: u64,
    },
}

/// How a full pass over the trace ends.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TTerm {
    /// Unconditional jump back to the trace entry: continue iterating
    /// without leaving the template (registers stay in locals).
    Loop,
    /// Conditional backedge as the final instruction: taken continues
    /// iterating, not-taken exits to the trace's fall-through pc.
    CondLoop {
        /// Condition over `a`, `b`.
        cond: Cond,
        /// First operand local.
        a: u8,
        /// Second operand local ([`ZERO`] for zero-compares).
        b: u8,
    },
    /// Unconditional jump elsewhere: single pass, exit to the target.
    Jump(u64),
    /// `jr`: single pass, exit to the address in local `s`.
    Jr {
        /// Local holding the jump target.
        s: u8,
    },
    /// `jalr`: writes the fall-through pc to `d` *then* jumps to `s`
    /// (handler order — `d == s` jumps to the link address).
    Jalr {
        /// Link-destination local.
        d: u8,
        /// Local holding the jump target (read after the link write).
        s: u8,
    },
    /// The trace was truncated (non-pure-int successor, page/PCC/length
    /// clamp): single pass, exit to the fall-through pc.
    Fallthrough,
}

/// A compiled trace template. All metric data needed for both complete
/// passes and side exits is precomputed so the executor never touches
/// the decoded region.
#[derive(Clone, Debug)]
pub(crate) struct Template {
    /// Instructions per complete pass (terminator included).
    pub(crate) n_trace: u32,
    /// Base cycles per complete pass.
    pub(crate) cycles_total: u64,
    /// Inclusive base-cycle prefix sums, one per trace instruction:
    /// `cum_cycles[k]` is what a departure after instruction `k` charges.
    pub(crate) cum_cycles: Vec<u32>,
    /// Entry loads: `(guest reg, local)` for every allocated register —
    /// the full read∪write set, so flushing the whole write set is exact
    /// on *any* exit (an unwritten local still holds the entry value).
    pub(crate) init: Vec<(u8, u8)>,
    /// Exit flushes: `(local, guest reg)` for the write set.
    pub(crate) flush: Vec<(u8, u8)>,
    /// The straight-line plan, one entry per non-terminator instruction.
    pub(crate) ops: Vec<TOp>,
    /// What the final instruction does (or [`TTerm::Fallthrough`] if the
    /// trace was truncated and every instruction is in `ops`).
    pub(crate) term: TTerm,
    /// Fetch events of one complete pass, coalesced to cache-line runs:
    /// `(first physical address of run, fetches in run)`. Counts sum to
    /// `n_trace`. Single-run traces additionally merge across loop
    /// iterations (same line throughout).
    pub(crate) fetch_runs: Vec<(u64, u64)>,
    /// Virtual entry address of the trace (where [`TTerm::Loop`] /
    /// [`TTerm::CondLoop`] resume when the budget expires mid-loop).
    pub(crate) entry_pc: u64,
    /// Virtual fall-through successor of the whole trace.
    pub(crate) fall_pc: u64,
}

impl Template {
    /// Whether the terminator re-enters the trace ([`TTerm::Loop`] /
    /// [`TTerm::CondLoop`]): registers stay resident in locals across
    /// iterations.
    #[cfg(test)]
    pub(crate) fn looping(&self) -> bool {
        matches!(self.term, TTerm::Loop | TTerm::CondLoop { .. })
    }
}

/// Promotion state of one superblock re-entry slot.
#[derive(Clone, Debug)]
pub(crate) enum TmplState {
    /// Counting guard hits toward [`PROMOTE_THRESHOLD`].
    Cold(u32),
    /// Compilation was attempted and declined (trace too short or the
    /// entry instruction is not pure-int); don't retry on this entry.
    Rejected,
    /// Compiled and executable.
    Hot(Box<Template>),
}

impl Default for TmplState {
    fn default() -> TmplState {
        TmplState::Cold(0)
    }
}

/// How the trace walk ended (pre-lowering form of [`TTerm`]).
enum End {
    Loop,
    CondLoop(Instr),
    Jump(u64),
    Jr(IReg),
    Jalr(IReg, IReg),
    Fall,
}

/// Dense local allocation for one trace: guest register → local slot.
struct Locals {
    map: [u8; 32],
    next: u8,
}

impl Locals {
    fn new() -> Locals {
        Locals {
            map: [0; 32],
            next: FIRST_REG_LOCAL,
        }
    }

    /// Local for reading guest register `r` (`$0` reads the pinned
    /// [`ZERO`] slot).
    fn read(&mut self, r: IReg) -> u8 {
        if r.0 == 0 {
            ZERO
        } else {
            self.slot(r)
        }
    }

    /// Local for writing guest register `r` (`$0` writes are discarded
    /// into [`SCRATCH`], matching `RegFile::w`).
    fn write(&mut self, r: IReg) -> u8 {
        if r.0 == 0 {
            SCRATCH
        } else {
            self.slot(r)
        }
    }

    fn slot(&mut self, r: IReg) -> u8 {
        let i = r.0 as usize & 31;
        if self.map[i] == 0 {
            self.map[i] = self.next;
            self.next += 1;
        }
        self.map[i]
    }
}

/// Compiles the trace starting at (`pc0`, `pa0`) = instruction `idx` of
/// `region`, entered under a PCC with `pcc_rem` fetchable instructions
/// remaining and an L1 line size of `line` bytes. Returns `None` when no
/// worthwhile trace exists (see [`MIN_TRACE`]).
pub(crate) fn compile(
    region: &DecodedRegion,
    idx: usize,
    pc0: u64,
    pa0: u64,
    pcc_rem: usize,
    line: u64,
) -> Option<Template> {
    let rstart = region.start();
    // Same clamps as the superblock entry: the contiguous-pa argument
    // (pa = pa0 + 4k) only holds within the entry's page, and every
    // fetch must sit below the PCC top the guard validated.
    let page_rem = ((FRAME_SIZE - pc0 % FRAME_SIZE) / 4) as usize;
    let cap = MAX_TRACE.min(page_rem).min(pcc_rem).min(region.len() - idx);

    // Pass 1: walk forward through fall-through control flow, collecting
    // pure-int instructions until a terminator or a clamp.
    let mut trace: Vec<Instr> = Vec::new();
    let mut end = End::Fall;
    while trace.len() < cap {
        let instr = region.instr_at(idx + trace.len()).instr;
        if !reg_effects(&instr).is_pure_int() {
            break;
        }
        match instr {
            Instr::J { target } => {
                trace.push(instr);
                let t = rstart + u64::from(target) * 4;
                end = if t == pc0 { End::Loop } else { End::Jump(t) };
                break;
            }
            Instr::Jr { rs } => {
                trace.push(instr);
                end = End::Jr(rs);
                break;
            }
            Instr::Jalr { rd, rs } => {
                trace.push(instr);
                end = End::Jalr(rd, rs);
                break;
            }
            Instr::Beq { target, .. }
            | Instr::Bne { target, .. }
            | Instr::Blez { target, .. }
            | Instr::Bgtz { target, .. }
            | Instr::Bltz { target, .. }
            | Instr::Bgez { target, .. }
                if rstart + u64::from(target) * 4 == pc0 =>
            {
                // A conditional backedge: end the trace here so taken
                // iterates inside the template instead of side-exiting
                // and re-entering through the guard every iteration.
                trace.push(instr);
                end = End::CondLoop(instr);
                break;
            }
            _ => trace.push(instr),
        }
    }
    let n = trace.len();
    let looping = matches!(end, End::Loop | End::CondLoop(_));
    if n == 0 || (!looping && n < MIN_TRACE) {
        return None;
    }

    // Pass 2: lower to local-slot form.
    let mut locals = Locals::new();
    let n_ops = if matches!(end, End::Fall) { n } else { n - 1 };
    let mut ops = Vec::with_capacity(n_ops);
    for &instr in &trace[..n_ops] {
        ops.push(lower(instr, &mut locals, rstart));
    }
    let term = match end {
        End::Fall => TTerm::Fallthrough,
        End::Loop | End::Jump(_) => match end {
            End::Loop => TTerm::Loop,
            End::Jump(t) => TTerm::Jump(t),
            _ => unreachable!(),
        },
        End::CondLoop(instr) => {
            let (cond, a, b) = lower_cond(instr, &mut locals);
            TTerm::CondLoop { cond, a, b }
        }
        End::Jr(rs) => TTerm::Jr { s: locals.read(rs) },
        End::Jalr(rd, rs) => {
            // Handler order: the link write happens before the target
            // read, so allocate (and later execute) in that order.
            let d = locals.write(rd);
            let s = locals.read(rs);
            TTerm::Jalr { d, s }
        }
    };
    debug_assert!((locals.next as usize) <= MAX_LOCALS);

    // Entry loads cover every allocated register — reads *and* writes —
    // so the unconditional full-write-set flush on any exit path always
    // stores either the template's value or the untouched entry value.
    let mut init = Vec::new();
    let mut flush = Vec::new();
    for r in 1..32u8 {
        let l = locals.map[r as usize];
        if l != 0 {
            init.push((r, l));
            if trace
                .iter()
                .any(|i| reg_effects(i).int_writes & (1 << r) != 0)
            {
                flush.push((l, r));
            }
        }
    }

    // Metrics: base-cycle prefix sums and line-coalesced fetch runs.
    let mut cum_cycles = Vec::with_capacity(n);
    let mut total = 0u32;
    for k in 0..n {
        total += u32::from(region.instr_at(idx + k).base_cycles);
        cum_cycles.push(total);
    }
    let mut fetch_runs: Vec<(u64, u64)> = Vec::new();
    for k in 0..n as u64 {
        let pa = pa0 + 4 * k;
        match fetch_runs.last_mut() {
            Some((first, count)) if pa / line == *first / line => *count += 1,
            _ => fetch_runs.push((pa, 1)),
        }
    }

    Some(Template {
        n_trace: n as u32,
        cycles_total: u64::from(total),
        cum_cycles,
        init,
        flush,
        ops,
        term,
        fetch_runs,
        entry_pc: pc0,
        fall_pc: pc0 + 4 * n as u64,
    })
}

/// Lowers a straight-line (or mid-trace branch) instruction to a [`TOp`].
/// Immediates are pre-converted to exactly what the handler computes.
fn lower(instr: Instr, l: &mut Locals, rstart: u64) -> TOp {
    // Allocation order mirrors handler evaluation order (reads before
    // the write) — irrelevant for correctness, kept for readability of
    // the dense mapping.
    match instr {
        Instr::Nop => TOp::Nop,
        Instr::Li { rd, imm } => TOp::Li {
            d: l.write(rd),
            imm: imm as u64,
        },
        Instr::Move { rd, rs } => TOp::Mov {
            s: l.read(rs),
            d: l.write(rd),
        },
        Instr::Add { rd, rs, rt } => TOp::Add {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Sub { rd, rs, rt } => TOp::Sub {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Mul { rd, rs, rt } => TOp::Mul {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::DivU { rd, rs, rt } => TOp::DivU {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::DivS { rd, rs, rt } => TOp::DivS {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::RemU { rd, rs, rt } => TOp::RemU {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::And { rd, rs, rt } => TOp::And {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Or { rd, rs, rt } => TOp::Or {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Xor { rd, rs, rt } => TOp::Xor {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Nor { rd, rs, rt } => TOp::Nor {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Sllv { rd, rs, rt } => TOp::Sllv {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Srlv { rd, rs, rt } => TOp::Srlv {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Srav { rd, rs, rt } => TOp::Srav {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Slt { rd, rs, rt } => TOp::Slt {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::Sltu { rd, rs, rt } => TOp::Sltu {
            a: l.read(rs),
            b: l.read(rt),
            d: l.write(rd),
        },
        Instr::AddI { rd, rs, imm } => TOp::AddI {
            s: l.read(rs),
            d: l.write(rd),
            imm: imm as u64,
        },
        Instr::AndI { rd, rs, imm } => TOp::AndI {
            s: l.read(rs),
            d: l.write(rd),
            imm,
        },
        Instr::OrI { rd, rs, imm } => TOp::OrI {
            s: l.read(rs),
            d: l.write(rd),
            imm,
        },
        Instr::XorI { rd, rs, imm } => TOp::XorI {
            s: l.read(rs),
            d: l.write(rd),
            imm,
        },
        Instr::SllI { rd, rs, sh } => TOp::SllI {
            s: l.read(rs),
            d: l.write(rd),
            sh: sh & 63,
        },
        Instr::SrlI { rd, rs, sh } => TOp::SrlI {
            s: l.read(rs),
            d: l.write(rd),
            sh: sh & 63,
        },
        Instr::SraI { rd, rs, sh } => TOp::SraI {
            s: l.read(rs),
            d: l.write(rd),
            sh: sh & 63,
        },
        Instr::SltI { rd, rs, imm } => TOp::SltI {
            s: l.read(rs),
            d: l.write(rd),
            imm,
        },
        Instr::SltuI { rd, rs, imm } => TOp::SltuI {
            s: l.read(rs),
            d: l.write(rd),
            imm,
        },
        Instr::Beq { target, .. }
        | Instr::Bne { target, .. }
        | Instr::Blez { target, .. }
        | Instr::Bgtz { target, .. }
        | Instr::Bltz { target, .. }
        | Instr::Bgez { target, .. } => {
            let (cond, a, b) = lower_cond(instr, l);
            TOp::Branch {
                cond,
                a,
                b,
                taken_next: rstart + u64::from(target) * 4,
            }
        }
        // The walk in `compile` never lets anything else through: J/Jr/
        // Jalr end the trace as terminators, non-pure-int ops end it
        // before inclusion.
        other => unreachable!("non-templatable instruction in trace: {other:?}"),
    }
}

/// Lowers a conditional branch's predicate to (condition, operand locals).
fn lower_cond(instr: Instr, l: &mut Locals) -> (Cond, u8, u8) {
    match instr {
        Instr::Beq { rs, rt, .. } => (Cond::Eq, l.read(rs), l.read(rt)),
        Instr::Bne { rs, rt, .. } => (Cond::Ne, l.read(rs), l.read(rt)),
        Instr::Blez { rs, .. } => (Cond::Lez, l.read(rs), ZERO),
        Instr::Bgtz { rs, .. } => (Cond::Gtz, l.read(rs), ZERO),
        Instr::Bltz { rs, .. } => (Cond::Ltz, l.read(rs), ZERO),
        Instr::Bgez { rs, .. } => (Cond::Gez, l.read(rs), ZERO),
        other => unreachable!("not a conditional branch: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::ireg;

    const LINE: u64 = 64;

    /// The spin inner loop as `spec.rs` lowers it, entered at the `top`
    /// label (index 1): li, sub, beqz(done), addi, j top.
    fn spin_body() -> Vec<Instr> {
        vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 1000,
            },
            Instr::Sub {
                rd: ireg::T1,
                rs: ireg::T0,
                rt: ireg::T1,
            },
            Instr::Beq {
                rs: ireg::T1,
                rt: ireg::ZERO,
                target: 6,
            },
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            },
            Instr::J { target: 1 },
            Instr::Syscall,
        ]
    }

    #[test]
    fn spin_loop_compiles_to_internal_loop() {
        let r = DecodedRegion::decode(0x10000, &spin_body());
        // Enter at `top` (index 1).
        let t = compile(&r, 1, 0x10004, 0x5004, 1 << 20, LINE).unwrap();
        assert_eq!(t.n_trace, 5, "li, sub, beqz, addi, j");
        assert!(matches!(t.term, TTerm::Loop));
        assert!(t.looping());
        assert_eq!(t.ops.len(), 4, "terminator j carries no op");
        assert!(
            matches!(t.ops[2], TOp::Branch { taken_next, .. } if taken_next == 0x10018),
            "beqz is a side exit to `done`"
        );
        // T0 is read and written, T1 written then read: both resident,
        // both flushed; nothing else allocated.
        assert_eq!(t.init.len(), 2);
        assert_eq!(t.flush.len(), 2);
        // 5 instructions, one cycle each.
        assert_eq!(t.cycles_total, 5);
        assert_eq!(t.cum_cycles, vec![1, 2, 3, 4, 5]);
        // 20 bytes from 0x5004: one line run.
        assert_eq!(t.fetch_runs, vec![(0x5004, 5)]);
    }

    #[test]
    fn trace_ends_before_non_pure_instruction() {
        // li, li, add, syscall: the trace must stop before the syscall.
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 1,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 2,
            },
            Instr::Add {
                rd: ireg::T2,
                rs: ireg::T0,
                rt: ireg::T1,
            },
            Instr::Syscall,
        ];
        let r = DecodedRegion::decode(0, &code);
        let t = compile(&r, 0, 0, 0, 1 << 20, LINE).unwrap();
        assert_eq!(t.n_trace, 3);
        assert!(matches!(t.term, TTerm::Fallthrough));
        assert!(!t.looping());
        assert_eq!(t.fall_pc, 12);
    }

    #[test]
    fn short_straight_line_traces_are_rejected() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 1,
            },
            Instr::Syscall,
        ];
        let r = DecodedRegion::decode(0, &code);
        assert!(compile(&r, 0, 0, 0, 1 << 20, LINE).is_none());
        // A non-pure entry instruction rejects immediately.
        assert!(compile(&r, 1, 4, 4, 1 << 20, LINE).is_none());
    }

    #[test]
    fn conditional_backedge_becomes_cond_loop() {
        // top: addi t0, t0, -1 ; bgtz t0, top ; syscall
        let code = vec![
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: -1,
            },
            Instr::Bgtz {
                rs: ireg::T0,
                target: 0,
            },
            Instr::Syscall,
        ];
        let r = DecodedRegion::decode(0, &code);
        let t = compile(&r, 0, 0, 0, 1 << 20, LINE).unwrap();
        assert_eq!(t.n_trace, 2);
        assert!(matches!(
            t.term,
            TTerm::CondLoop {
                cond: Cond::Gtz,
                ..
            }
        ));
        assert!(t.looping());
        assert_eq!(t.fall_pc, 8);
    }

    #[test]
    fn trace_clamps_to_page_and_pcc() {
        let code = vec![
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            };
            64
        ];
        let r = DecodedRegion::decode(0x10000, &code);
        // PCC allows only 4 more instructions.
        let t = compile(&r, 0, 0x10000, 0, 4, LINE).unwrap();
        assert_eq!(t.n_trace, 4);
        // Entry 8 bytes before a page boundary: 2 instructions fit.
        let near_end = FRAME_SIZE - 8;
        let code2 = vec![
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            };
            8
        ];
        let r2 = DecodedRegion::decode(near_end, &code2);
        assert!(
            compile(&r2, 0, near_end, near_end, 1 << 20, LINE).is_none(),
            "2-instruction straight-line trace is below MIN_TRACE"
        );
    }

    #[test]
    fn fetch_runs_split_at_line_boundaries() {
        // 20 instructions starting 8 bytes before a line boundary:
        // 2 fetches in the first line, 16 in the next, 2 in the third.
        let code = vec![
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: 1,
            };
            20
        ];
        let r = DecodedRegion::decode(0x10000, &code);
        let t = compile(&r, 0, 0x10000, LINE - 8, 1 << 20, LINE).unwrap();
        assert_eq!(t.fetch_runs, vec![(LINE - 8, 2), (LINE, 16), (2 * LINE, 2)]);
        assert_eq!(t.fetch_runs.iter().map(|r| r.1).sum::<u64>(), 20);
    }

    #[test]
    fn zero_register_maps_to_pinned_slots() {
        // add t0, $0, $0 ; move $0, t0 ; j 0 — reads of $0 use the ZERO
        // local, the write to $0 lands in SCRATCH and is never flushed.
        let code = vec![
            Instr::Add {
                rd: ireg::T0,
                rs: ireg::ZERO,
                rt: ireg::ZERO,
            },
            Instr::Move {
                rd: ireg::ZERO,
                rs: ireg::T0,
            },
            Instr::J { target: 0 },
        ];
        let r = DecodedRegion::decode(0, &code);
        let t = compile(&r, 0, 0, 0, 1 << 20, LINE).unwrap();
        assert!(matches!(t.term, TTerm::Loop));
        assert!(matches!(t.ops[0], TOp::Add { a: 0, b: 0, .. }));
        assert!(matches!(t.ops[1], TOp::Mov { d: 1, .. }));
        assert_eq!(t.flush.len(), 1, "only t0 flushes");
    }
}
