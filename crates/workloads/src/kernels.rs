//! Compute-bound workload kernels: the "well within the noise" population
//! of Figure 4 (few pointers, tight arithmetic loops).

use crate::single;
use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_rtld::Program;
use cheriabi::guest::{emit_lcg_step, GuestOps};

/// Fills `len` bytes at `buf` with LCG-derived bytes; `state` is the LCG
/// register (clobbers Val(5..=7), Ptr(6)).
pub(crate) fn emit_fill(f: &mut FnBuilder<'_>, buf: Ptr, len: i64, state: Val) {
    f.li(Val(5), 0);
    let top = f.label();
    let done = f.label();
    f.bind(top);
    f.li(Val(6), len);
    f.sub(Val(6), Val(5), Val(6));
    f.beqz(Val(6), done);
    emit_lcg_step(f, state);
    f.ptr_add(Ptr(6), buf, Val(5));
    f.store(state, Ptr(6), 0, Width::B);
    f.add_imm(Val(5), Val(5), 1);
    f.jmp(top);
    f.bind(done);
}

/// security-sha: rotate-xor-add over a word buffer, many passes.
pub fn sha(opts: CodegenOpts, seed: u64) -> Program {
    single("sha", opts, move |f| {
        let words = 512i64;
        f.malloc_imm(Ptr(0), words * 8);
        f.li(Val(0), seed as i64 | 1);
        emit_fill(f, Ptr(0), words * 8, Val(0));
        // h = seed; 40 passes of h = rotl(h,5) ^ w[i] + i
        f.li(Val(1), seed as i64); // h
        f.li(Val(2), 0); // pass
        let pass_top = f.label();
        let pass_done = f.label();
        f.bind(pass_top);
        f.li(Val(3), 40);
        f.sub(Val(3), Val(2), Val(3));
        f.beqz(Val(3), pass_done);
        f.li(Val(4), 0); // i
        let w_top = f.label();
        let w_done = f.label();
        f.bind(w_top);
        f.li(Val(3), words);
        f.sub(Val(3), Val(4), Val(3));
        f.beqz(Val(3), w_done);
        f.shl_imm(Val(5), Val(4), 3);
        f.ptr_add(Ptr(1), Ptr(0), Val(5));
        f.load(Val(5), Ptr(1), 0, Width::D, false);
        // h = ((h << 5) | (h >> 59)) ^ w + i
        f.shl_imm(Val(6), Val(1), 5);
        f.shr_imm(Val(7), Val(1), 59);
        f.or(Val(1), Val(6), Val(7));
        f.xor(Val(1), Val(1), Val(5));
        f.add(Val(1), Val(1), Val(4));
        f.add_imm(Val(4), Val(4), 1);
        f.jmp(w_top);
        f.bind(w_done);
        f.add_imm(Val(2), Val(2), 1);
        f.jmp(pass_top);
        f.bind(pass_done);
        f.and_imm(Val(1), Val(1), 0x3f);
        f.sys_exit(Val(1));
    })
}

/// office-stringsearch: naive substring search, counting matches.
pub fn stringsearch(opts: CodegenOpts, seed: u64) -> Program {
    single("stringsearch", opts, move |f| {
        let text_len = 4096i64;
        let pat_len = 6i64;
        f.malloc_imm(Ptr(0), text_len);
        f.li(Val(0), seed as i64 | 1);
        emit_fill(f, Ptr(0), text_len, Val(0));
        // Narrow the alphabet so matches occur: text[i] &= 3.
        f.li(Val(1), 0);
        let n_top = f.label();
        let n_done = f.label();
        f.bind(n_top);
        f.li(Val(2), text_len);
        f.sub(Val(2), Val(1), Val(2));
        f.beqz(Val(2), n_done);
        f.ptr_add(Ptr(1), Ptr(0), Val(1));
        f.load(Val(3), Ptr(1), 0, Width::B, false);
        f.and_imm(Val(3), Val(3), 3);
        f.store(Val(3), Ptr(1), 0, Width::B);
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(n_top);
        f.bind(n_done);
        // pattern = text[100 .. 100+pat_len]
        f.ptr_add_imm(Ptr(2), Ptr(0), 100);
        // count = 0; for i in 0..text_len-pat_len { compare }
        f.li(Val(6), 0); // match count
        f.li(Val(0), 0); // i
        let s_top = f.label();
        let s_done = f.label();
        f.bind(s_top);
        f.li(Val(1), text_len - pat_len);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), s_done);
        f.ptr_add(Ptr(1), Ptr(0), Val(0));
        f.li(Val(2), 0); // j
        let c_top = f.label();
        let c_done = f.label();
        let mismatch = f.label();
        f.bind(c_top);
        f.li(Val(3), pat_len);
        f.sub(Val(3), Val(2), Val(3));
        f.beqz(Val(3), c_done);
        f.ptr_add(Ptr(3), Ptr(1), Val(2));
        f.load(Val(4), Ptr(3), 0, Width::B, false);
        f.ptr_add(Ptr(4), Ptr(2), Val(2));
        f.load(Val(5), Ptr(4), 0, Width::B, false);
        f.bne(Val(4), Val(5), mismatch);
        f.add_imm(Val(2), Val(2), 1);
        f.jmp(c_top);
        f.bind(c_done);
        f.add_imm(Val(6), Val(6), 1);
        f.bind(mismatch);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(s_top);
        f.bind(s_done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}

/// auto-basicmath: gcd chains and integer square roots.
pub fn basicmath(opts: CodegenOpts, seed: u64) -> Program {
    single("basicmath", opts, move |f| {
        f.li(Val(6), 0); // checksum
        f.li(Val(0), 1); // i
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(1), 2500);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), done);
        // a = i * 7919 + seed; b = i * 104729 + 1
        f.li(Val(1), 7919);
        f.mul(Val(1), Val(1), Val(0));
        f.add_imm(Val(1), Val(1), (seed & 0xffff) as i64);
        f.li(Val(2), 104_729);
        f.mul(Val(2), Val(2), Val(0));
        f.add_imm(Val(2), Val(2), 1);
        // gcd loop
        let g_top = f.label();
        let g_done = f.label();
        f.bind(g_top);
        f.beqz(Val(2), g_done);
        f.remu(Val(3), Val(1), Val(2));
        f.mv(Val(1), Val(2));
        f.mv(Val(2), Val(3));
        f.jmp(g_top);
        f.bind(g_done);
        f.add(Val(6), Val(6), Val(1));
        // isqrt(i * 31) by bit descent
        f.li(Val(1), 31);
        f.mul(Val(1), Val(1), Val(0)); // n
        f.li(Val(2), 0); // root
        f.li(Val(3), 1 << 14); // bit
        let q_top = f.label();
        let q_done = f.label();
        f.bind(q_top);
        f.beqz(Val(3), q_done);
        // t = root + bit; if n >= t*t then root = t
        f.add(Val(4), Val(2), Val(3));
        f.mul(Val(5), Val(4), Val(4));
        f.sltu(Val(5), Val(1), Val(5));
        let skip = f.label();
        f.bnez(Val(5), skip);
        f.mv(Val(2), Val(4));
        f.bind(skip);
        f.shr_imm(Val(3), Val(3), 1);
        f.jmp(q_top);
        f.bind(q_done);
        f.add(Val(6), Val(6), Val(2));
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(top);
        f.bind(done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}

/// Shared shape of the two adpcm codecs: byte-stream predictor with a
/// global step table accessed through the GOT.
fn adpcm(opts: CodegenOpts, seed: u64, encode: bool) -> Program {
    let name = if encode { "adpcm-enc" } else { "adpcm-dec" };
    let mut pb = cheri_rtld::ProgramBuilder::new(name);
    let mut exe = pb.object(name);
    let table: Vec<u8> = (0..16u64)
        .flat_map(|i| (7 + i * 13).to_le_bytes())
        .collect();
    exe.add_data("step_table", &table, 16);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        let n = 8192i64;
        f.malloc_imm(Ptr(0), n);
        f.li(Val(0), seed as i64 | 1);
        emit_fill(&mut f, Ptr(0), n, Val(0));
        f.load_global_ptr(Ptr(2), "step_table");
        // predictor loop
        f.li(Val(0), 0); // i
        f.li(Val(1), 0); // predictor
        f.li(Val(2), 0); // index
        f.li(Val(6), 0); // checksum
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(3), n);
        f.sub(Val(3), Val(0), Val(3));
        f.beqz(Val(3), done);
        f.ptr_add(Ptr(1), Ptr(0), Val(0));
        f.load(Val(3), Ptr(1), 0, Width::B, false);
        // delta = sample - predictor (enc) or step lookup (dec)
        if encode {
            f.sub(Val(4), Val(3), Val(1));
        } else {
            f.add(Val(4), Val(3), Val(2));
        }
        f.and_imm(Val(4), Val(4), 0xf);
        // step = table[index]
        f.shl_imm(Val(5), Val(2), 3);
        f.ptr_add(Ptr(3), Ptr(2), Val(5));
        f.load(Val(5), Ptr(3), 0, Width::D, false);
        // predictor += (delta * step) >> 3; index = (index + delta) & 15
        f.mul(Val(7), Val(4), Val(5));
        f.shr_imm(Val(7), Val(7), 3);
        f.add(Val(1), Val(1), Val(7));
        f.and_imm(Val(1), Val(1), 0xffff);
        f.add(Val(2), Val(2), Val(4));
        f.and_imm(Val(2), Val(2), 15);
        f.add(Val(6), Val(6), Val(1));
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(top);
        f.bind(done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// telco-adpcm-enc.
pub fn adpcm_enc(opts: CodegenOpts, seed: u64) -> Program {
    adpcm(opts, seed, true)
}

/// telco-adpcm-dec.
pub fn adpcm_dec(opts: CodegenOpts, seed: u64) -> Program {
    adpcm(opts, seed, false)
}

/// spec2006-gobmk-ish: board-array game playout with neighbour scans.
pub fn gobmk(opts: CodegenOpts, seed: u64) -> Program {
    single("gobmk", opts, move |f| {
        let dim = 19i64;
        let cells = dim * dim;
        f.malloc_imm(Ptr(0), cells);
        f.li(Val(0), seed as i64 | 1);
        // 4000 stone placements with liberty counting.
        f.li(Val(1), 0); // move number
        f.li(Val(6), 0); // checksum
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(2), 4000);
        f.sub(Val(2), Val(1), Val(2));
        f.beqz(Val(2), done);
        emit_lcg_step(f, Val(0));
        f.li(Val(2), cells);
        f.remu(Val(2), Val(0), Val(2)); // pos
                                        // colour = move & 1 + 1
        f.and_imm(Val(3), Val(1), 1);
        f.add_imm(Val(3), Val(3), 1);
        f.ptr_add(Ptr(1), Ptr(0), Val(2));
        f.store(Val(3), Ptr(1), 0, Width::B);
        // liberties: count same-colour neighbours (pos±1, pos±dim), bounds
        // by clamping into the array.
        for delta in [1i64, -1, dim, -dim] {
            // npos = pos + delta; wrap into [0, cells)
            f.add_imm(Val(4), Val(2), delta);
            let skip = f.label();
            f.bltz(Val(4), skip);
            f.li(Val(5), cells);
            f.slt(Val(5), Val(4), Val(5));
            f.beqz(Val(5), skip);
            f.ptr_add(Ptr(2), Ptr(0), Val(4));
            f.load(Val(5), Ptr(2), 0, Width::B, false);
            f.bne(Val(5), Val(3), skip);
            f.add_imm(Val(6), Val(6), 1);
            f.bind(skip);
        }
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(top);
        f.bind(done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}

/// spec2006-libquantum-ish: streaming passes over an amplitude array.
pub fn libquantum(opts: CodegenOpts, seed: u64) -> Program {
    single("libquantum", opts, move |f| {
        let n = 2048i64;
        f.malloc_imm(Ptr(0), n * 16);
        f.li(Val(0), seed as i64 | 1);
        emit_fill(f, Ptr(0), n * 16, Val(0));
        f.li(Val(1), 0); // gate
        f.li(Val(6), 0); // checksum
        let g_top = f.label();
        let g_done = f.label();
        f.bind(g_top);
        f.li(Val(2), 24);
        f.sub(Val(2), Val(1), Val(2));
        f.beqz(Val(2), g_done);
        f.li(Val(0), 0); // element
        let e_top = f.label();
        let e_done = f.label();
        f.bind(e_top);
        f.li(Val(2), n);
        f.sub(Val(2), Val(0), Val(2));
        f.beqz(Val(2), e_done);
        f.shl_imm(Val(3), Val(0), 4);
        f.ptr_add(Ptr(1), Ptr(0), Val(3));
        f.load(Val(4), Ptr(1), 0, Width::D, false); // re
        f.load(Val(5), Ptr(1), 8, Width::D, false); // im
                                                    // controlled-not-ish: re' = re ^ (im << 1); im' = im + (re >> 2)
        f.shl_imm(Val(7), Val(5), 1);
        f.xor(Val(4), Val(4), Val(7));
        f.shr_imm(Val(7), Val(4), 2);
        f.add(Val(5), Val(5), Val(7));
        f.store(Val(4), Ptr(1), 0, Width::D);
        f.store(Val(5), Ptr(1), 8, Width::D);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(e_top);
        f.bind(e_done);
        f.add(Val(6), Val(6), Val(4));
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(g_top);
        f.bind(g_done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}
