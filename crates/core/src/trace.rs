//! Abstract-capability reconstruction from derivation traces (§5.5).
//!
//! "Because capabilities are explicitly manipulated, we can use an
//! instruction trace to track capability derivation and use, in order to
//! reconstruct the abstract capability of a process." The output here is
//! Figure 5: for each capability *source* (stack, malloc, exec, glob
//! relocs, syscall, kern/tls/signal), the cumulative number of capabilities
//! created whose bounds are at most `2^k` bytes.

use cheri_cap::CapSource;
use std::collections::BTreeMap;
use std::fmt;

/// Smallest size bucket exponent plotted (Figure 5's x-axis starts at 2^2).
pub const MIN_EXP: u32 = 2;
/// Largest size bucket exponent plotted (2^23, 8 MiB, as in the figure).
pub const MAX_EXP: u32 = 23;

/// Cumulative capability counts per source and size bucket.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SizeCdf {
    /// `counts[source][k]` = number of capabilities with
    /// `length <= 2^(MIN_EXP + k)`; the final bucket also absorbs larger
    /// capabilities (the curves "terminate at the size of the largest
    /// capability found").
    counts: BTreeMap<CapSource, Vec<u64>>,
    total: u64,
}

impl SizeCdf {
    /// Builds the distribution from `(source, bounds length)` events.
    #[must_use]
    pub fn from_events(events: &[(CapSource, u64)]) -> SizeCdf {
        let buckets = (MAX_EXP - MIN_EXP + 1) as usize;
        let mut cdf = SizeCdf::default();
        for (source, len) in events {
            let entry = cdf
                .counts
                .entry(*source)
                .or_insert_with(|| vec![0; buckets + 1]);
            let mut k = 0;
            while k < buckets && *len > (1u64 << (MIN_EXP + k as u32)) {
                k += 1;
            }
            // Index `buckets` = "larger than 2^MAX_EXP".
            let idx = if *len > (1u64 << MAX_EXP) { buckets } else { k };
            entry[idx] += 1;
            cdf.total += 1;
        }
        // Convert per-bucket counts to cumulative sums.
        for v in cdf.counts.values_mut() {
            for i in 1..v.len() {
                v[i] += v[i - 1];
            }
        }
        cdf
    }

    /// Total number of capability-creation events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The sources present.
    #[must_use]
    pub fn sources(&self) -> Vec<CapSource> {
        self.counts.keys().copied().collect()
    }

    /// Cumulative count for `source` at bound `2^exp` (clamped to the
    /// plotted range; `exp > MAX_EXP` returns the source total).
    #[must_use]
    pub fn cumulative(&self, source: CapSource, exp: u32) -> u64 {
        let Some(v) = self.counts.get(&source) else {
            return 0;
        };
        if exp > MAX_EXP {
            return *v.last().expect("non-empty buckets");
        }
        let idx = exp.saturating_sub(MIN_EXP) as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Cumulative count across *all* sources at bound `2^exp` (the "all"
    /// curve of Figure 5).
    #[must_use]
    pub fn cumulative_all(&self, exp: u32) -> u64 {
        self.sources()
            .iter()
            .map(|s| self.cumulative(*s, exp))
            .sum()
    }

    /// The largest bounds length observed for `source`, if any.
    #[must_use]
    pub fn max_exp_with_growth(&self, source: CapSource) -> Option<u32> {
        let v = self.counts.get(&source)?;
        let last = *v.last()?;
        (MIN_EXP..=MAX_EXP + 1)
            .rev()
            .find(|e| self.cumulative(source, e.saturating_sub(1)) < last)
    }

    /// Fraction of capabilities (all sources) with bounds at most `2^exp`.
    #[must_use]
    pub fn fraction_at_most(&self, exp: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.cumulative_all(exp) as f64 / self.total as f64
    }

    /// Renders the Figure 5 table: one row per size bucket, one column per
    /// source plus the "all" column.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let sources = self.sources();
        out.push_str("size      all");
        for s in &sources {
            out.push_str(&format!(" {:>12}", s.label()));
        }
        out.push('\n');
        for exp in MIN_EXP..=MAX_EXP {
            out.push_str(&format!("2^{exp:<3} {:>8}", self.cumulative_all(exp)));
            for s in &sources {
                out.push_str(&format!(" {:>12}", self.cumulative(*s, exp)));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SizeCdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_accumulates_monotonically() {
        let events = vec![
            (CapSource::Stack, 8),
            (CapSource::Stack, 64),
            (CapSource::Malloc, 100),
            (CapSource::Malloc, 1 << 20),
            (CapSource::Exec, 1 << 30), // beyond MAX_EXP: absorbed at the top
        ];
        let cdf = SizeCdf::from_events(&events);
        assert_eq!(cdf.total(), 5);
        assert_eq!(cdf.cumulative(CapSource::Stack, 3), 1);
        assert_eq!(cdf.cumulative(CapSource::Stack, 6), 2);
        assert_eq!(cdf.cumulative(CapSource::Malloc, 7), 1);
        assert_eq!(cdf.cumulative(CapSource::Malloc, 20), 2);
        // Monotone in exp.
        for e in MIN_EXP..MAX_EXP {
            assert!(cdf.cumulative_all(e) <= cdf.cumulative_all(e + 1));
        }
        // The huge exec capability is not counted at 2^23 but is in totals.
        assert_eq!(cdf.cumulative(CapSource::Exec, MAX_EXP), 0);
        assert_eq!(cdf.cumulative(CapSource::Exec, MAX_EXP + 1), 1);
    }

    #[test]
    fn fraction_and_render() {
        let events = vec![(CapSource::Malloc, 16); 9]
            .into_iter()
            .chain(std::iter::once((CapSource::Syscall, 1 << 22)))
            .collect::<Vec<_>>();
        let cdf = SizeCdf::from_events(&events);
        assert!((cdf.fraction_at_most(10) - 0.9).abs() < 1e-9);
        let table = cdf.render();
        assert!(table.contains("malloc"));
        assert!(table.contains("syscall"));
        assert!(table.lines().count() > 20);
    }
}
