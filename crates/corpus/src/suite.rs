//! Suite runner: executes a corpus under one ABI and tallies Table 1 rows.
//!
//! Execution goes through the unified [`cheriabi::harness`]: each test case
//! becomes a declarative [`RunSpec`] naming its program
//! ([`ProgramSpec::Corpus`] keyed by the case's unique name), and the suite
//! fans out across a worker pool with reports reassembled in corpus order,
//! so the tallies (and the failure list feeding Table 2) are identical at
//! any `--jobs` level. Because specs are plain data, suite runs compose
//! with the harness's report cache and `--shard` splitting; this module's
//! [`lower`] function is the corpus's entry in the program registry.

use crate::compat::Category;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, ExitStatus};
use cheri_rtld::Program;
use cheriabi::harness::{CaseOutcome, CaseReport, Harness, RunSpec};
use cheriabi::spec::{ProgramSpec, Registry};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Exit code a test uses to report "skipped" (the automake convention).
pub const SKIP_EXIT_CODE: i64 = 77;

/// What a test is expected to do (used for corpus self-checks, not for
/// scoring — scoring only looks at actual outcomes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestExpectation {
    /// Passes under both ABIs.
    PassBoth,
    /// Fails (or traps) under CheriABI only, for the given Table 2 reason.
    FailCheriOnly(Category),
    /// Fails under both (a pre-existing bug in the test).
    FailBoth,
    /// Skips under both ABIs (e.g. requires `sbrk`).
    SkipBoth,
    /// Skips under CheriABI only (needs a compatibility shim).
    SkipCheriOnly,
}

/// Builds the guest program for a codegen configuration (shared so the
/// registry can hand it to a worker thread).
pub type CaseBuilder = Arc<dyn Fn(CodegenOpts) -> Program + Send + Sync>;

/// One corpus test.
pub struct TestCase {
    /// The case's identity in the program registry
    /// ([`ProgramSpec::Corpus`]): a name may recur across suites, but
    /// only ever for the identical program.
    pub name: String,
    /// Builds the guest program.
    pub build: CaseBuilder,
    /// Expected behaviour.
    pub expectation: TestExpectation,
}

impl fmt::Debug for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TestCase({}, {:?})", self.name, self.expectation)
    }
}

/// Why a test failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The guest ran and ended badly (non-zero exit, trap, budget).
    Status(ExitStatus),
    /// The program did not load.
    Load(String),
    /// Building or running the case panicked in the harness worker.
    Panicked(String),
    /// The case exceeded its wall-clock deadline.
    Deadline,
    /// The scheduler declared deadlock; the string is the kernel's per-pid
    /// blocked-on diagnostics (scenario runs only).
    Deadlock(String),
    /// The differential oracle caught the fast machine disagreeing with
    /// the reference semantics (`--oracle` runs only) — a simulator bug,
    /// not a guest failure, but a suite failure all the same.
    Divergence(String),
}

impl FailureKind {
    /// The guest exit status, if the test actually ran.
    #[must_use]
    pub fn status(&self) -> Option<ExitStatus> {
        match self {
            FailureKind::Status(status) => Some(*status),
            _ => None,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Status(status) => write!(f, "{status:?}"),
            FailureKind::Load(e) => write!(f, "load failed: {e}"),
            FailureKind::Panicked(e) => write!(f, "panicked: {e}"),
            FailureKind::Deadline => write!(f, "deadline exceeded"),
            FailureKind::Deadlock(diag) => write!(f, "deadlock: {diag}"),
            FailureKind::Divergence(detail) => write!(f, "divergence: {detail}"),
        }
    }
}

/// Outcome of one test under one ABI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuiteOutcome {
    /// Exit code 0.
    Pass,
    /// Non-zero exit, trap, budget exhaustion, load failure, panic, or
    /// missed deadline.
    Fail(FailureKind),
    /// Exit code [`SKIP_EXIT_CODE`].
    Skip,
}

/// Aggregate results for one ABI (one row of Table 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuiteResult {
    /// Tests that passed.
    pub pass: usize,
    /// Tests that failed.
    pub fail: usize,
    /// Tests that skipped.
    pub skip: usize,
    /// Names and failure kinds, in corpus order (feeds Table 2).
    pub failures: Vec<(String, FailureKind)>,
}

impl SuiteResult {
    /// Total tests run.
    #[must_use]
    pub fn total(&self) -> usize {
        self.pass + self.fail + self.skip
    }
}

impl fmt::Display for SuiteResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pass / {} fail / {} skip (of {})",
            self.pass,
            self.fail,
            self.skip,
            self.total()
        )
    }
}

/// Codegen options for an ABI (corpus programs are never sanitised).
#[must_use]
pub fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

/// Instruction budget per corpus test.
const CASE_BUDGET: u64 = 20_000_000;

/// Every corpus case builder, keyed by name — the lookup table behind
/// [`ProgramSpec::Corpus`] lowering. Built once, on first use; the case
/// *lists* are cheap to build (the builders are closures, invoked only
/// when a case actually lowers). The libc++-like subsuite reuses whole
/// families of the FreeBSD-like suite, so a name can appear in several
/// suites — always denoting the identical program (same family
/// constructor, same parameters), which is what makes name-keyed lowering
/// (and name-keyed report caching) sound.
fn case_builders() -> &'static HashMap<String, CaseBuilder> {
    static MAP: OnceLock<HashMap<String, CaseBuilder>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut map = HashMap::new();
        for case in crate::families::freebsd_suite()
            .into_iter()
            .chain(crate::families::libcxx_suite())
            .chain(crate::minidb::pg_regress_suite())
        {
            map.entry(case.name.clone()).or_insert(case.build);
        }
        // The adversarial corpus rides the same registry: `atk-*` names,
        // lowered identically under every ABI mode (only the membrane's
        // behaviour differs, never the program).
        for case in crate::attacks::attack_suite() {
            map.entry(case.name.clone()).or_insert(case.build);
        }
        map
    })
}

/// This crate's entry in the program registry: lowers [`ProgramSpec::Corpus`]
/// (by unique case name), [`ProgramSpec::Initdb`] and
/// [`ProgramSpec::InitdbDynamic`] (the Figure 4 workload, whose record
/// count varies with the seed as `base_records + (seed % 5) * 20`), and
/// [`ProgramSpec::Scenario`] (the multi-tenant minidb scenario plane).
///
/// # Panics
///
/// Panics when a `Corpus` spec names a case no suite defines — inside a
/// harness worker this is confined to the case's report.
#[must_use]
pub fn lower(spec: &ProgramSpec, opts: CodegenOpts, seed: u64) -> Option<Program> {
    match spec {
        ProgramSpec::Corpus { case } => {
            let build = case_builders()
                .get(case)
                .unwrap_or_else(|| panic!("no corpus case named `{case}`"));
            Some(build(opts))
        }
        ProgramSpec::Initdb { records } => Some(crate::minidb::build_initdb(opts, *records)),
        ProgramSpec::InitdbDynamic { base_records } => Some(crate::minidb::build_initdb(
            opts,
            base_records + (seed % 5) as i64 * 20,
        )),
        ProgramSpec::Scenario {
            clients,
            queries,
            mix,
            swap_pressure,
        } => Some(crate::scenario::build(
            opts,
            seed,
            *clients,
            *queries,
            mix,
            *swap_pressure,
        )),
        _ => None,
    }
}

/// A registry sufficient for everything this crate lowers.
#[must_use]
pub fn registry() -> Registry {
    Registry::builtin().with(lower)
}

/// Lowers one test into a harness spec for `abi`.
#[must_use]
pub fn case_spec(case: &TestCase, abi: AbiMode) -> RunSpec {
    RunSpec::new(
        case.name.clone(),
        ProgramSpec::Corpus {
            case: case.name.clone(),
        },
        opts_for(abi),
        abi,
    )
    .with_budget(CASE_BUDGET)
}

/// Lowers a whole suite into harness specs for `abi`, in corpus order —
/// the input to [`suite_from_reports`], and to the harness's caching /
/// sharding / streaming session modes in between.
#[must_use]
pub fn suite_specs(cases: &[TestCase], abi: AbiMode) -> Vec<RunSpec> {
    cases.iter().map(|case| case_spec(case, abi)).collect()
}

/// Scores a harness outcome as a suite outcome.
#[must_use]
pub fn score(outcome: &CaseOutcome) -> SuiteOutcome {
    match outcome {
        CaseOutcome::Exited(ExitStatus::Code(0)) => SuiteOutcome::Pass,
        CaseOutcome::Exited(ExitStatus::Code(SKIP_EXIT_CODE)) => SuiteOutcome::Skip,
        CaseOutcome::Exited(other) => SuiteOutcome::Fail(FailureKind::Status(*other)),
        CaseOutcome::LoadFailed(e) => SuiteOutcome::Fail(FailureKind::Load(e.clone())),
        CaseOutcome::Panicked(e) => SuiteOutcome::Fail(FailureKind::Panicked(e.clone())),
        CaseOutcome::DeadlineExceeded => SuiteOutcome::Fail(FailureKind::Deadline),
        CaseOutcome::Deadlock(diag) => SuiteOutcome::Fail(FailureKind::Deadlock(diag.clone())),
        CaseOutcome::Divergence(detail) => {
            SuiteOutcome::Fail(FailureKind::Divergence(detail.clone()))
        }
    }
}

/// Tallies suite reports (in corpus order) into one Table 1 row.
#[must_use]
pub fn suite_from_reports<'a>(reports: impl IntoIterator<Item = &'a CaseReport>) -> SuiteResult {
    let mut result = SuiteResult::default();
    for report in reports {
        match score(&report.outcome) {
            SuiteOutcome::Pass => result.pass += 1,
            SuiteOutcome::Skip => result.skip += 1,
            SuiteOutcome::Fail(kind) => {
                result.fail += 1;
                result.failures.push((report.name.clone(), kind));
            }
        }
    }
    result
}

/// Runs one test under `abi` in a fresh kernel.
#[must_use]
pub fn run_case(case: &TestCase, abi: AbiMode) -> SuiteOutcome {
    score(&cheriabi::harness::execute_spec(&registry(), &case_spec(case, abi)).outcome)
}

/// Runs a whole suite under `abi` across `jobs` workers.
#[must_use]
pub fn run_suite_jobs(cases: &[TestCase], abi: AbiMode, jobs: usize) -> SuiteResult {
    let reports = Harness::new(jobs).run(&registry(), &suite_specs(cases, abi));
    suite_from_reports(&reports)
}

/// Runs a whole suite under `abi` sequentially.
#[must_use]
pub fn run_suite(cases: &[TestCase], abi: AbiMode) -> SuiteResult {
    run_suite_jobs(cases, abi, 1)
}

/// Classifies a suite's failures into Table 2 categories using the dynamic
/// trap classifier.
#[must_use]
pub fn classify_failures(result: &SuiteResult) -> Vec<(String, Option<Category>)> {
    result
        .failures
        .iter()
        .map(|(name, kind)| {
            let cat = match kind {
                FailureKind::Status(ExitStatus::Fault(cause)) => Category::from_trap(cause),
                _ => None,
            };
            (name.clone(), cat)
        })
        .collect()
}
