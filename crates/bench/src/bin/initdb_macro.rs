//! Regenerates the **§5.2 initdb macro-benchmark**: cycles for the minidb
//! `initdb` under mips64, CheriABI (large-immediate CLC), CheriABI with the
//! original small CLC immediate, and the AddressSanitizer build — plus the
//! code-size effect of the CLC extension.
//!
//! Paper: "PostgreSQL is only 6.8% slower as a CheriABI binary ...
//! compiling the initdb binary with Address Sanitizer instrumentation
//! requires 3.29 times more cycles to complete"; the large-immediate CLC
//! "reduces the code size of most binaries by over 10%, and reduces the
//! initdb overhead from 11% to 6.8%".

use cheri_bench::{configurations, measure};
use cheri_corpus::minidb::build_initdb;

fn main() {
    let records = 420;
    println!("initdb macro-benchmark ({records} records)");
    println!(
        "{:<20} {:>14} {:>12} {:>10} {:>10}",
        "config", "cycles", "instrs", "vs mips64", "code size"
    );
    let mut base_cycles = 0f64;
    for (name, opts, abi, asan) in configurations() {
        let program = build_initdb(opts, records);
        let code: usize = program.objects.iter().map(|o| o.code.len()).sum();
        let (_, m) = measure(&program, abi, asan);
        if name == "mips64" {
            base_cycles = m.cycles as f64;
        }
        println!(
            "{:<20} {:>14} {:>12} {:>9.2}x {:>10}",
            name,
            m.cycles,
            m.instructions,
            m.cycles as f64 / base_cycles,
            code,
        );
    }
    println!();
    println!(
        "Paper: cheriabi ≈ 1.068x, cheriabi-smallclc ≈ 1.11x, asan ≈ 3.29x;\n\
         the large-immediate CLC shrinks code by >10% on GOT-heavy binaries."
    );
}
