//! The §6 "cache studies" future-work experiment: sweep the shared L2 size
//! and measure how the CheriABI cycle overhead of a pointer-heavy workload
//! responds. The paper notes its FPGA "cache hierarchy nor pipeline
//! resembles a modern super-scalar CPU" and calls for a trace-based cache
//! analysis; this binary is that analysis for the simulated platform.

use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig, SpawnOpts};
use cheri_mem::{CacheConfig, CacheHierarchy};
use cheriabi::System;

fn measure_with_l2(
    program: &cheriabi::Program,
    abi: AbiMode,
    l2_kib: u64,
) -> cheriabi::Metrics {
    let mut sys = System::with_config(KernelConfig::default());
    sys.kernel.cpu.caches = CacheHierarchy::new(
        CacheConfig::l1_default(),
        CacheConfig { size: l2_kib * 1024, line: 64, ways: 8 },
    );
    let mut opts = SpawnOpts::new(abi);
    opts.instr_budget = Some(2_000_000_000);
    let (_, _, m) = sys.measure(program, &opts).expect("loads");
    m
}

fn main() {
    let w = cheri_workloads::all()
        .into_iter()
        .find(|w| w.name == "spec2006-xalancbmk")
        .expect("registered");
    println!("Cache sweep: CheriABI cycle overhead vs L2 size (spec2006-xalancbmk)");
    println!("{:>8} {:>12} {:>12} {:>9} {:>14}", "L2", "mips64 cyc", "cheri cyc", "overhead", "cheri L2 miss");
    for l2_kib in [64u64, 128, 256, 512, 1024] {
        let pm = (w.build)(CodegenOpts::mips64(), 7);
        let pc = (w.build)(CodegenOpts::purecap(), 7);
        let m = measure_with_l2(&pm, AbiMode::Mips64, l2_kib);
        let c = measure_with_l2(&pc, AbiMode::CheriAbi, l2_kib);
        println!(
            "{:>6}K {:>12} {:>12} {:>+8.1}% {:>14}",
            l2_kib,
            m.cycles,
            c.cycles,
            (c.cycles as f64 / m.cycles as f64 - 1.0) * 100.0,
            c.l2_misses,
        );
    }
    println!();
    println!(
        "expected shape: the overhead peaks where the pure-capability\n\
         working set spills an L2 that still holds the legacy working set,\n\
         and shrinks once the cache comfortably holds both (or neither)."
    );
}
