//! minidb — the PostgreSQL stand-in (Table 1 "PostgreSQL" row, §5.2
//! "initdb" macro-benchmark).
//!
//! A small relational-ish engine written as *guest code*: a dynamically
//! linked library (`libdb`) providing an open-addressing hash table of
//! heap-allocated records, and an `initdb` executable that creates catalog
//! tables, bulk-loads records, sorts an index through pointer arrays and
//! writes catalog files — the same flavour of work (IPC-light, allocation-
//! and pointer-heavy, some file I/O) as PostgreSQL's `initdb`.
//!
//! The `pg_regress`-like suite has 167 tests. Sixteen are seeded with the
//! exact failure classes the paper reports for PostgreSQL under CheriABI
//! (§5.1): eight assume the pointer size/slot stride of the legacy ABI, one
//! uses an under-aligned pointer ("which will trap on CHERI"), and seven
//! interleave fields on hard-coded offsets and so corrupt capability bytes
//! ("returning slightly different results").

use crate::compat::Category;
use crate::families::{emit_insertion_sort_recptrs, single_main};
use crate::suite::{TestCase, TestExpectation};
use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::Sys;
use cheri_rtld::{Program, ProgramBuilder};
use cheriabi::guest::GuestOps;

/// Table header size: `[capacity: u64][count: u64]` (slots follow,
/// pointer-aligned).
const TABLE_HDR: i64 = 16;

/// Builds a program consisting of `libdb` plus an executable whose `main`
/// is emitted by `body`.
pub fn build_with_libdb(
    name: &str,
    opts: CodegenOpts,
    body: impl FnOnce(&mut FnBuilder<'_>),
) -> Program {
    let mut pb = ProgramBuilder::new(name);
    add_libdb(&mut pb, opts);

    let mut exe = pb.object(name);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// Adds the `libdb` shared object (`db_create`/`db_put`/`db_get`) to a
/// program under construction — shared with the scenario plane, whose
/// server links the same library.
pub(crate) fn add_libdb(pb: &mut ProgramBuilder, opts: CodegenOpts) {
    let mut lib = pb.object("libdb");
    lib.set_tls_size(32);
    emit_db_create(&mut lib, opts);
    emit_db_put(&mut lib, opts);
    emit_db_get(&mut lib, opts);
    pb.add(lib.finish());
}

fn emit_db_create(lib: &mut cheri_isa::ObjectBuilder, opts: CodegenOpts) {
    let mut f = FnBuilder::begin(lib, "db_create", opts);
    f.enter(32);
    f.arg_to_val(Val(0), 0);
    let ps = f.ptr_size() as i64;
    f.li(Val(1), ps);
    f.mul(Val(1), Val(1), Val(0));
    f.add_imm(Val(1), Val(1), TABLE_HDR);
    f.malloc(Ptr(0), Val(1));
    f.store(Val(0), Ptr(0), 0, Width::D);
    f.li(Val(2), 0);
    f.store(Val(2), Ptr(0), 8, Width::D);
    f.set_ret_ptr(Ptr(0));
    f.leave_ret();
}

fn emit_db_put(lib: &mut cheri_isa::ObjectBuilder, opts: CodegenOpts) {
    let mut f = FnBuilder::begin(lib, "db_put", opts);
    f.enter(32);
    f.arg_to_ptr(Ptr(0), 0);
    f.arg_to_val(Val(0), 1);
    f.arg_to_val(Val(1), 2);
    f.malloc_imm(Ptr(1), 16);
    f.store(Val(0), Ptr(1), 0, Width::D);
    f.store(Val(1), Ptr(1), 8, Width::D);
    f.load(Val(2), Ptr(0), 0, Width::D, false);
    f.li(Val(3), 0x9E37_79B1);
    f.mul(Val(4), Val(0), Val(3));
    f.remu(Val(4), Val(4), Val(2));
    let ps = f.ptr_size() as i64;
    let probe = f.label();
    let empty = f.label();
    let update = f.label();
    f.bind(probe);
    f.li(Val(5), ps);
    f.mul(Val(5), Val(5), Val(4));
    f.ptr_add(Ptr(2), Ptr(0), Val(5));
    f.load_ptr(Ptr(3), Ptr(2), TABLE_HDR);
    f.ptr_is_null(Val(6), Ptr(3));
    f.bnez(Val(6), empty);
    f.load(Val(7), Ptr(3), 0, Width::D, false);
    f.beq(Val(7), Val(0), update);
    f.add_imm(Val(4), Val(4), 1);
    f.remu(Val(4), Val(4), Val(2));
    f.jmp(probe);
    f.bind(empty);
    f.store_ptr(Ptr(1), Ptr(2), TABLE_HDR);
    f.load(Val(6), Ptr(0), 8, Width::D, false);
    f.add_imm(Val(6), Val(6), 1);
    f.store(Val(6), Ptr(0), 8, Width::D);
    f.leave_ret();
    f.bind(update);
    f.store(Val(1), Ptr(3), 8, Width::D);
    f.leave_ret();
}

fn emit_db_get(lib: &mut cheri_isa::ObjectBuilder, opts: CodegenOpts) {
    let mut f = FnBuilder::begin(lib, "db_get", opts);
    f.enter(32);
    f.arg_to_ptr(Ptr(0), 0);
    f.arg_to_val(Val(0), 1);
    f.load(Val(2), Ptr(0), 0, Width::D, false);
    f.li(Val(3), 0x9E37_79B1);
    f.mul(Val(4), Val(0), Val(3));
    f.remu(Val(4), Val(4), Val(2));
    let ps = f.ptr_size() as i64;
    let probe = f.label();
    let missing = f.label();
    let found = f.label();
    f.bind(probe);
    f.li(Val(5), ps);
    f.mul(Val(5), Val(5), Val(4));
    f.ptr_add(Ptr(2), Ptr(0), Val(5));
    f.load_ptr(Ptr(3), Ptr(2), TABLE_HDR);
    f.ptr_is_null(Val(6), Ptr(3));
    f.bnez(Val(6), missing);
    f.load(Val(7), Ptr(3), 0, Width::D, false);
    f.beq(Val(7), Val(0), found);
    f.add_imm(Val(4), Val(4), 1);
    f.remu(Val(4), Val(4), Val(2));
    f.jmp(probe);
    f.bind(found);
    f.load(Val(1), Ptr(3), 8, Width::D, false);
    f.set_ret_val(Val(1));
    f.leave_ret();
    f.bind(missing);
    f.li(Val(1), -1);
    f.set_ret_val(Val(1));
    f.leave_ret();
}

/// Emits `main`-side code that stores `key`/`value` through `db_put`.
pub(crate) fn call_put(f: &mut FnBuilder<'_>, table: Ptr, key: Val, value: Val) {
    f.set_arg_ptr(0, table);
    f.set_arg_val(1, key);
    f.set_arg_val(2, value);
    f.call_global("db_put");
}

/// Emits a `db_get` call; result in `out`.
pub(crate) fn call_get(f: &mut FnBuilder<'_>, table: Ptr, key: Val, out: Val) {
    f.set_arg_ptr(0, table);
    f.set_arg_val(1, key);
    f.call_global("db_get");
    f.ret_val_to(out);
}

/// The `initdb` program (§5.2 macro-benchmark): create catalogs, bulk-load,
/// verify, sort an index through pointer arrays, and write catalog files.
/// Number of "catalog schema" globals in the initdb binary. Real initdb
/// links a large binary whose GOT far exceeds the original CLC immediate
/// reach; these globals (reserved *before* the hot `db_*` symbols) push the
/// hot GOT slots beyond the small-immediate window, reproducing the §5.2
/// CLC effect.
pub const SCHEMA_GLOBALS: i64 = 200;

/// The `initdb` program (§5.2 macro-benchmark): bootstrap the catalog
/// schema through the GOT, create catalog tables, bulk-load `records`
/// LCG-keyed records, verify them, sort an index through pointer arrays,
/// and write catalog files.
#[must_use]
pub fn build_initdb(opts: CodegenOpts, records: i64) -> Program {
    let mut pb = ProgramBuilder::new("initdb");
    let mut lib = pb.object("libdb");
    lib.set_tls_size(32);
    emit_db_create(&mut lib, opts);
    emit_db_put(&mut lib, opts);
    emit_db_get(&mut lib, opts);
    pb.add(lib.finish());

    let mut exe = pb.object("initdb");
    // Catalog schema globals, and their GOT slots reserved ahead of the
    // hot db_* symbols (large-binary GOT layout).
    for g in 0..SCHEMA_GLOBALS {
        let name = format!("schema_{g}");
        exe.add_data(&name, &(g as u64).to_le_bytes(), 16);
        exe.got_slot(&name);
    }
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        build_initdb_main(&mut f, records);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

fn build_initdb_main(f: &mut FnBuilder<'_>, records: i64) {
    {
        f.enter(480);
        // --- catalog bootstrap: touch every schema global (GOT-heavy) ---
        f.li(Val(6), 0);
        for _pass in 0..2 {
            for g in 0..SCHEMA_GLOBALS {
                f.load_global_ptr(Ptr(5), &format!("schema_{g}"));
                f.load(Val(1), Ptr(5), 0, Width::D, false);
                f.add(Val(6), Val(6), Val(1));
            }
        }
        f.addr_of_stack(Ptr(6), 208, 16);
        f.store(Val(6), Ptr(6), 0, Width::D); // bootstrap checksum

        // table = db_create(8192): with 128-bit pointers the slot array
        // alone is 128 KiB — half the L2 — so the pure-capability build
        // feels the pointer-size footprint, as PostgreSQL does in §5.2.
        f.li(Val(0), 8192);
        f.set_arg_val(0, Val(0));
        f.call_global("db_create");
        f.ret_ptr_to(Ptr(0));
        // Table pointer must survive calls: spill it.
        f.spill_ptr(Ptr(0), 16);

        // Bulk load: keys from an LCG, value = i. State in the frame.
        f.li(Val(0), 0); // i
        f.li(Val(1), 12345); // lcg
        let load_top = f.label();
        let load_done = f.label();
        f.bind(load_top);
        f.li(Val(2), records);
        f.sub(Val(3), Val(0), Val(2));
        f.beqz(Val(3), load_done);
        // lcg = lcg * 1103515245 + 12345 (mod 2^31)
        f.li(Val(4), 1_103_515_245);
        f.mul(Val(1), Val(1), Val(4));
        f.add_imm(Val(1), Val(1), 12345);
        f.li(Val(4), 0x7fff_ffff);
        f.and(Val(1), Val(1), Val(4));
        // i and lcg live across the call: save to frame.
        f.addr_of_stack(Ptr(6), 32, 16);
        f.store(Val(0), Ptr(6), 0, Width::D);
        f.store(Val(1), Ptr(6), 8, Width::D);
        f.reload_ptr(Ptr(0), 16);
        call_put(f, Ptr(0), Val(1), Val(0));
        f.addr_of_stack(Ptr(6), 32, 16);
        f.load(Val(0), Ptr(6), 0, Width::D, false);
        f.load(Val(1), Ptr(6), 8, Width::D, false);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(load_top);
        f.bind(load_done);

        // Verify: re-run the LCG, sum the fetched values.
        f.li(Val(0), 0);
        f.li(Val(1), 12345);
        f.addr_of_stack(Ptr(6), 56, 24);
        f.li(Val(2), 0);
        f.store(Val(2), Ptr(6), 16, Width::D); // checksum
        let ver_top = f.label();
        let ver_done = f.label();
        f.bind(ver_top);
        f.li(Val(2), records);
        f.sub(Val(3), Val(0), Val(2));
        f.beqz(Val(3), ver_done);
        f.li(Val(4), 1_103_515_245);
        f.mul(Val(1), Val(1), Val(4));
        f.add_imm(Val(1), Val(1), 12345);
        f.li(Val(4), 0x7fff_ffff);
        f.and(Val(1), Val(1), Val(4));
        f.addr_of_stack(Ptr(6), 56, 24);
        f.store(Val(0), Ptr(6), 0, Width::D);
        f.store(Val(1), Ptr(6), 8, Width::D);
        f.reload_ptr(Ptr(0), 16);
        call_get(f, Ptr(0), Val(1), Val(5));
        f.addr_of_stack(Ptr(6), 56, 24);
        f.load(Val(0), Ptr(6), 0, Width::D, false);
        f.load(Val(1), Ptr(6), 8, Width::D, false);
        f.load(Val(2), Ptr(6), 16, Width::D, false);
        f.add(Val(2), Val(2), Val(5));
        f.store(Val(2), Ptr(6), 16, Width::D);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(ver_top);
        f.bind(ver_done);

        // Index build: allocate an array of 48 record pointers (records
        // fetched straight from the table slots), sort by key.
        let ps = f.ptr_size() as i64;
        let idx_n = 96i64;
        f.li(Val(5), idx_n * ps);
        f.malloc(Ptr(1), Val(5));
        f.reload_ptr(Ptr(0), 16);
        // copy the first idx_n non-null slots
        f.li(Val(0), 0); // slot cursor
        f.li(Val(1), 0); // collected
        let coll_top = f.label();
        let coll_done = f.label();
        f.bind(coll_top);
        f.li(Val(2), 8192); // scan the whole slot array
        f.sub(Val(3), Val(0), Val(2));
        f.beqz(Val(3), coll_done);
        f.li(Val(2), idx_n);
        f.sub(Val(3), Val(1), Val(2));
        f.beqz(Val(3), coll_done);
        f.li(Val(4), ps);
        f.mul(Val(4), Val(4), Val(0));
        f.ptr_add(Ptr(2), Ptr(0), Val(4));
        f.load_ptr(Ptr(3), Ptr(2), TABLE_HDR);
        f.ptr_is_null(Val(6), Ptr(3));
        let skip = f.label();
        f.bnez(Val(6), skip);
        f.li(Val(4), ps);
        f.mul(Val(4), Val(4), Val(1));
        f.ptr_add(Ptr(4), Ptr(1), Val(4));
        f.store_ptr(Ptr(3), Ptr(4), 0);
        f.add_imm(Val(1), Val(1), 1);
        f.bind(skip);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(coll_top);
        f.bind(coll_done);
        emit_insertion_sort_recptrs(f, Ptr(1), idx_n);

        // Write catalog files: keys of the sorted index + a control file.
        // open("catalog", CREAT|WRONLY|TRUNC)
        f.addr_of_stack(Ptr(2), 88, 16);
        f.li(Val(0), i64::from_le_bytes(*b"catalog\0"));
        f.store(Val(0), Ptr(2), 0, Width::D);
        f.set_arg_ptr(0, Ptr(2));
        f.li(Val(1), 7);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Open as i64);
        f.ret_val_to(Val(6)); // fd (t-reg: survives the loop's syscalls)
        f.li(Val(0), 0);
        let wr_top = f.label();
        let wr_done = f.label();
        f.bind(wr_top);
        f.li(Val(1), idx_n);
        f.sub(Val(2), Val(0), Val(1));
        f.beqz(Val(2), wr_done);
        f.li(Val(3), ps);
        f.mul(Val(3), Val(3), Val(0));
        f.ptr_add(Ptr(3), Ptr(1), Val(3));
        f.load_ptr(Ptr(4), Ptr(3), 0);
        // copy the key into a stack buffer, write(fd, buf, 8)
        f.addr_of_stack(Ptr(5), 112, 16);
        f.load(Val(4), Ptr(4), 0, Width::D, false);
        f.store(Val(4), Ptr(5), 0, Width::D);
        f.addr_of_stack(Ptr(6), 136, 16);
        f.store(Val(0), Ptr(6), 0, Width::D); // save i
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(5));
        f.li(Val(5), 8);
        f.set_arg_val(2, Val(5));
        f.syscall(Sys::Write as i64);
        f.addr_of_stack(Ptr(6), 136, 16);
        f.load(Val(0), Ptr(6), 0, Width::D, false);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(wr_top);
        f.bind(wr_done);
        f.set_arg_val(0, Val(6));
        f.syscall(Sys::Close as i64);

        // control file
        f.addr_of_stack(Ptr(2), 160, 16);
        f.li(Val(0), i64::from_le_bytes(*b"pg_ctrl\0"));
        f.store(Val(0), Ptr(2), 0, Width::D);
        f.set_arg_ptr(0, Ptr(2));
        f.li(Val(1), 7);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Open as i64);
        f.ret_val_to(Val(6));
        f.addr_of_stack(Ptr(5), 184, 16);
        f.addr_of_stack(Ptr(6), 56, 24);
        f.load(Val(2), Ptr(6), 16, Width::D, false); // checksum
        f.store(Val(2), Ptr(5), 0, Width::D);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(5));
        f.li(Val(3), 8);
        f.set_arg_val(2, Val(3));
        f.syscall(Sys::Write as i64);

        // exit(checksum & 0x3f)
        f.addr_of_stack(Ptr(6), 56, 24);
        f.load(Val(2), Ptr(6), 16, Width::D, false);
        // fold in the bootstrap checksum
        f.addr_of_stack(Ptr(6), 208, 16);
        f.load(Val(3), Ptr(6), 0, Width::D, false);
        f.add(Val(2), Val(2), Val(3));
        f.and_imm(Val(2), Val(2), 0x3f);
        f.sys_exit(Val(2));
    }
}

/// Expected exit code of `initdb` for a record count: the sum of stored
/// values (the LCG keys are distinct with overwhelming probability) plus
/// two bootstrap passes over the schema globals, ABI-independent.
#[must_use]
pub fn initdb_expected_exit(records: i64) -> i64 {
    let bootstrap = 2 * (SCHEMA_GLOBALS * (SCHEMA_GLOBALS - 1) / 2);
    (records * (records - 1) / 2 + bootstrap) & 0x3f
}

// ---------------------------------------------------------------------
// pg_regress-like suite (167 tests)
// ---------------------------------------------------------------------

/// The 167-test `pg_regress` stand-in.
#[must_use]
pub fn pg_regress_suite() -> Vec<TestCase> {
    let mut cases: Vec<TestCase> = Vec::new();

    // 120 basic put/get tests.
    for i in 0..120u64 {
        let n = 4 + (i % 24) as i64;
        let seed = 3 + i as i64;
        cases.push(TestCase {
            name: format!("pg_putget_{i}"),
            expectation: TestExpectation::PassBoth,
            build: std::sync::Arc::new(move |o| {
                build_with_libdb("pg", o, move |f| {
                    f.enter(96);
                    f.li(Val(0), 64);
                    f.set_arg_val(0, Val(0));
                    f.call_global("db_create");
                    f.ret_ptr_to(Ptr(0));
                    f.spill_ptr(Ptr(0), 16);
                    // put keys seed, 2*seed, ..., n*seed with value = key+1
                    f.li(Val(0), 1);
                    let top = f.label();
                    let done = f.label();
                    f.bind(top);
                    f.li(Val(1), n + 1);
                    f.sub(Val(2), Val(0), Val(1));
                    f.beqz(Val(2), done);
                    f.li(Val(3), seed);
                    f.mul(Val(3), Val(3), Val(0));
                    f.add_imm(Val(4), Val(3), 1);
                    f.addr_of_stack(Ptr(6), 32, 8);
                    f.store(Val(0), Ptr(6), 0, Width::D);
                    f.reload_ptr(Ptr(0), 16);
                    call_put(f, Ptr(0), Val(3), Val(4));
                    f.addr_of_stack(Ptr(6), 32, 8);
                    f.load(Val(0), Ptr(6), 0, Width::D, false);
                    f.add_imm(Val(0), Val(0), 1);
                    f.jmp(top);
                    f.bind(done);
                    // verify key n*seed -> n*seed + 1
                    f.li(Val(3), seed * n);
                    f.reload_ptr(Ptr(0), 16);
                    call_get(f, Ptr(0), Val(3), Val(5));
                    f.li(Val(6), seed * n + 1);
                    let bad = f.label();
                    f.bne(Val(5), Val(6), bad);
                    f.sys_exit_imm(0);
                    f.bind(bad);
                    f.sys_exit_imm(1);
                })
            }),
        });
    }

    // 23 update tests.
    for i in 0..23u64 {
        let key = 17 + i as i64;
        cases.push(TestCase {
            name: format!("pg_update_{i}"),
            expectation: TestExpectation::PassBoth,
            build: std::sync::Arc::new(move |o| {
                build_with_libdb("pgu", o, move |f| {
                    f.enter(64);
                    f.li(Val(0), 32);
                    f.set_arg_val(0, Val(0));
                    f.call_global("db_create");
                    f.ret_ptr_to(Ptr(0));
                    f.spill_ptr(Ptr(0), 16);
                    f.li(Val(1), key);
                    f.li(Val(2), 1);
                    call_put(f, Ptr(0), Val(1), Val(2));
                    f.reload_ptr(Ptr(0), 16);
                    f.li(Val(1), key);
                    f.li(Val(2), 2);
                    call_put(f, Ptr(0), Val(1), Val(2)); // overwrite
                    f.reload_ptr(Ptr(0), 16);
                    f.li(Val(1), key);
                    call_get(f, Ptr(0), Val(1), Val(3));
                    f.li(Val(4), 2);
                    let bad = f.label();
                    f.bne(Val(3), Val(4), bad);
                    f.sys_exit_imm(0);
                    f.bind(bad);
                    f.sys_exit_imm(1);
                })
            }),
        });
    }

    // 8 tests that assume the legacy pointer size: slots indexed with a
    // hard-coded 8-byte stride ("the test assumes a pointer size of 4 or 8
    // bytes").
    for i in 0..8u64 {
        cases.push(TestCase {
            name: format!("pg_ptr_size_assumption_{i}"),
            expectation: TestExpectation::FailCheriOnly(Category::PointerShape),
            build: std::sync::Arc::new(move |o| {
                single_main("pgps", o, move |f| {
                    let n = 3 + i as i64;
                    f.li(Val(5), 16 + 8 * (2 * (n % 3) + 2));
                    f.malloc(Ptr(0), Val(5)); // "table" with 8-byte slots
                    f.malloc_imm(Ptr(1), 16); // record
                    f.li(Val(0), 5);
                    f.store(Val(0), Ptr(1), 0, Width::D);
                    // slot at hard-coded stride 8 (odd slot: mis-aligned
                    // for capabilities)
                    f.store_ptr(Ptr(1), Ptr(0), 16 + 8 * (2 * (n % 3) + 1));
                    f.load_ptr(Ptr(2), Ptr(0), 16 + 8 * (2 * (n % 3) + 1));
                    f.load(Val(1), Ptr(2), 0, Width::D, false);
                    f.li(Val(2), 5);
                    let bad = f.label();
                    f.bne(Val(1), Val(2), bad);
                    f.sys_exit_imm(0);
                    f.bind(bad);
                    f.sys_exit_imm(1);
                })
            }),
        });
    }

    // 1 under-aligned pointer test ("will trap on CHERI").
    cases.push(TestCase {
        name: "pg_underaligned_datum".into(),
        expectation: TestExpectation::FailCheriOnly(Category::Alignment),
        build: std::sync::Arc::new(|o| {
            single_main("pgua", o, |f| {
                f.malloc_imm(Ptr(0), 64);
                f.malloc_imm(Ptr(1), 16);
                // A "varlena datum" header of 8 bytes followed by a pointer.
                f.store_ptr(Ptr(1), Ptr(0), 8);
                f.load_ptr(Ptr(2), Ptr(0), 8);
                f.sys_exit_imm(0);
            })
        }),
    });

    // 7 "slightly different results" tests: (ptr, u64) pairs packed with a
    // hard-coded 16-byte record layout — the u64 overwrites half of the
    // capability under CheriABI, clearing its tag.
    for i in 0..7u64 {
        cases.push(TestCase {
            name: format!("pg_packed_tuple_{i}"),
            expectation: TestExpectation::FailCheriOnly(Category::PointerShape),
            build: std::sync::Arc::new(move |o| {
                single_main("pgpk", o, move |f| {
                    f.malloc_imm(Ptr(0), 64); // tuple buffer
                    f.malloc_imm(Ptr(1), 16); // pointee
                    f.li(Val(0), 9 + i as i64);
                    f.store(Val(0), Ptr(1), 0, Width::D);
                    // layout assumption: [ptr at 0 (8B)][len at 8]
                    f.store_ptr(Ptr(1), Ptr(0), 0);
                    f.li(Val(1), 4);
                    f.store(Val(1), Ptr(0), 8, Width::D); // smashes cap half
                    f.load_ptr(Ptr(2), Ptr(0), 0);
                    f.load(Val(2), Ptr(2), 0, Width::D, false);
                    f.li(Val(3), 9 + i as i64);
                    let bad = f.label();
                    f.bne(Val(2), Val(3), bad);
                    f.sys_exit_imm(0);
                    f.bind(bad);
                    f.sys_exit_imm(1);
                })
            }),
        });
    }

    // 1 test that needs a compatibility shim under CheriABI (skips).
    cases.push(TestCase {
        name: "pg_needs_shim".into(),
        expectation: TestExpectation::SkipCheriOnly,
        build: std::sync::Arc::new(|o| {
            single_main("pgshim", o, |f| {
                f.abi_is_purecap(Val(0));
                let run = f.label();
                f.beqz(Val(0), run);
                f.sys_exit_imm(crate::suite::SKIP_EXIT_CODE);
                f.bind(run);
                f.sys_exit_imm(0);
            })
        }),
    });

    // 7 scan/aggregation tests to round out 167.
    for i in 0..7u64 {
        let n = 6 + i as i64;
        cases.push(TestCase {
            name: format!("pg_aggregate_{i}"),
            expectation: TestExpectation::PassBoth,
            build: std::sync::Arc::new(move |o| {
                build_with_libdb("pga", o, move |f| {
                    f.enter(96);
                    f.li(Val(0), 64);
                    f.set_arg_val(0, Val(0));
                    f.call_global("db_create");
                    f.ret_ptr_to(Ptr(0));
                    f.spill_ptr(Ptr(0), 16);
                    f.li(Val(0), 1);
                    let top = f.label();
                    let done = f.label();
                    f.bind(top);
                    f.li(Val(1), n + 1);
                    f.sub(Val(2), Val(0), Val(1));
                    f.beqz(Val(2), done);
                    f.addr_of_stack(Ptr(6), 32, 8);
                    f.store(Val(0), Ptr(6), 0, Width::D);
                    f.reload_ptr(Ptr(0), 16);
                    f.mv(Val(3), Val(0));
                    f.mv(Val(4), Val(0));
                    call_put(f, Ptr(0), Val(3), Val(4));
                    f.addr_of_stack(Ptr(6), 32, 8);
                    f.load(Val(0), Ptr(6), 0, Width::D, false);
                    f.add_imm(Val(0), Val(0), 1);
                    f.jmp(top);
                    f.bind(done);
                    // aggregate: sum of gets for 1..n == n(n+1)/2
                    f.li(Val(0), 1);
                    f.li(Val(7), 0);
                    let atop = f.label();
                    let adone = f.label();
                    f.bind(atop);
                    f.li(Val(1), n + 1);
                    f.sub(Val(2), Val(0), Val(1));
                    f.beqz(Val(2), adone);
                    f.addr_of_stack(Ptr(6), 48, 16);
                    f.store(Val(0), Ptr(6), 0, Width::D);
                    f.store(Val(7), Ptr(6), 8, Width::D);
                    f.reload_ptr(Ptr(0), 16);
                    call_get(f, Ptr(0), Val(0), Val(5));
                    f.addr_of_stack(Ptr(6), 48, 16);
                    f.load(Val(0), Ptr(6), 0, Width::D, false);
                    f.load(Val(7), Ptr(6), 8, Width::D, false);
                    f.add(Val(7), Val(7), Val(5));
                    f.add_imm(Val(0), Val(0), 1);
                    f.jmp(atop);
                    f.bind(adone);
                    f.li(Val(1), n * (n + 1) / 2);
                    let bad = f.label();
                    f.bne(Val(7), Val(1), bad);
                    f.sys_exit_imm(0);
                    f.bind(bad);
                    f.sys_exit_imm(1);
                })
            }),
        });
    }

    assert_eq!(cases.len(), 167, "pg_regress suite must have 167 tests");
    cases
}
