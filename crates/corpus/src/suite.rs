//! Suite runner: executes a corpus under one ABI and tallies Table 1 rows.

use crate::compat::Category;
use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, SpawnOpts};
use cheri_isa::codegen::CodegenOpts;
use cheri_rtld::Program;
use std::fmt;

/// Exit code a test uses to report "skipped" (the automake convention).
pub const SKIP_EXIT_CODE: i64 = 77;

/// What a test is expected to do (used for corpus self-checks, not for
/// scoring — scoring only looks at actual outcomes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestExpectation {
    /// Passes under both ABIs.
    PassBoth,
    /// Fails (or traps) under CheriABI only, for the given Table 2 reason.
    FailCheriOnly(Category),
    /// Fails under both (a pre-existing bug in the test).
    FailBoth,
    /// Skips under both ABIs (e.g. requires `sbrk`).
    SkipBoth,
    /// Skips under CheriABI only (needs a compatibility shim).
    SkipCheriOnly,
}

/// One corpus test.
pub struct TestCase {
    /// Unique name.
    pub name: String,
    /// Builds the guest program for a codegen configuration.
    pub build: Box<dyn Fn(CodegenOpts) -> Program + Send + Sync>,
    /// Expected behaviour.
    pub expectation: TestExpectation,
}

impl fmt::Debug for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TestCase({}, {:?})", self.name, self.expectation)
    }
}

/// Outcome of one test under one ABI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SuiteOutcome {
    /// Exit code 0.
    Pass,
    /// Non-zero exit, trap, or budget exhaustion.
    Fail(ExitStatus),
    /// Exit code [`SKIP_EXIT_CODE`].
    Skip,
}

/// Aggregate results for one ABI (one row of Table 1).
#[derive(Clone, Debug, Default)]
pub struct SuiteResult {
    /// Tests that passed.
    pub pass: usize,
    /// Tests that failed.
    pub fail: usize,
    /// Tests that skipped.
    pub skip: usize,
    /// Names and statuses of failures (for the Table 2 dynamic analysis).
    pub failures: Vec<(String, ExitStatus)>,
}

impl SuiteResult {
    /// Total tests run.
    #[must_use]
    pub fn total(&self) -> usize {
        self.pass + self.fail + self.skip
    }
}

impl fmt::Display for SuiteResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pass / {} fail / {} skip (of {})",
            self.pass,
            self.fail,
            self.skip,
            self.total()
        )
    }
}

/// Codegen options for an ABI (corpus programs are never sanitised).
#[must_use]
pub fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

/// Runs one test under `abi` in a fresh kernel.
#[must_use]
pub fn run_case(case: &TestCase, abi: AbiMode) -> SuiteOutcome {
    let program = (case.build)(opts_for(abi));
    let mut kernel = Kernel::new(KernelConfig::default());
    let mut opts = SpawnOpts::new(abi);
    opts.instr_budget = Some(20_000_000);
    let (status, _console) = kernel
        .run_program(&program, &opts)
        .expect("corpus programs must load");
    match status {
        ExitStatus::Code(0) => SuiteOutcome::Pass,
        ExitStatus::Code(SKIP_EXIT_CODE) => SuiteOutcome::Skip,
        other => SuiteOutcome::Fail(other),
    }
}

/// Runs a whole suite under `abi`.
#[must_use]
pub fn run_suite(cases: &[TestCase], abi: AbiMode) -> SuiteResult {
    let mut result = SuiteResult::default();
    for case in cases {
        match run_case(case, abi) {
            SuiteOutcome::Pass => result.pass += 1,
            SuiteOutcome::Skip => result.skip += 1,
            SuiteOutcome::Fail(status) => {
                result.fail += 1;
                result.failures.push((case.name.clone(), status));
            }
        }
    }
    result
}

/// Classifies a suite's failures into Table 2 categories using the dynamic
/// trap classifier.
#[must_use]
pub fn classify_failures(result: &SuiteResult) -> Vec<(String, Option<Category>)> {
    result
        .failures
        .iter()
        .map(|(name, status)| {
            let cat = match status {
                ExitStatus::Fault(cause) => Category::from_trap(cause),
                _ => None,
            };
            (name.clone(), cat)
        })
        .collect()
}
