//! The §6 "cache studies" future-work experiment: sweep the shared L2 size
//! and measure how the CheriABI cycle overhead of a pointer-heavy workload
//! responds. The paper notes its FPGA "cache hierarchy nor pipeline
//! resembles a modern super-scalar CPU" and calls for a trace-based cache
//! analysis; this binary is that analysis for the simulated platform.

use cheri_bench::cli;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::AbiMode;
use cheriabi::harness::{CaseOutcome, CaseReport, RunSpec};
use cheriabi::spec::ProgramSpec;
use cheriabi::Metrics;

const SEED: u64 = 7;
const WORKLOAD: &str = "spec2006-xalancbmk";
const L2_SIZES_KIB: [u64; 5] = [64, 128, 256, 512, 1024];

fn metrics(report: &CaseReport) -> Metrics {
    match &report.outcome {
        CaseOutcome::Exited(_) => report.metrics,
        other => panic!("{}: {other}", report.name),
    }
}

fn main() {
    let opts = cli::parse_env();
    let mut specs = Vec::with_capacity(L2_SIZES_KIB.len() * 2);
    for l2_kib in L2_SIZES_KIB {
        for (label, codegen, abi) in [
            ("mips64", CodegenOpts::mips64(), AbiMode::Mips64),
            ("cheriabi", CodegenOpts::purecap(), AbiMode::CheriAbi),
        ] {
            specs.push(
                RunSpec::new(
                    format!("{WORKLOAD}-l2-{l2_kib}K-{label}"),
                    ProgramSpec::Workload {
                        name: WORKLOAD.to_string(),
                    },
                    codegen,
                    abi,
                )
                .with_seed(SEED)
                .with_budget(2_000_000_000)
                .with_l2_size(l2_kib * 1024),
            );
        }
    }
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    if !opts.json {
        println!("Cache sweep: CheriABI cycle overhead vs L2 size (spec2006-xalancbmk)");
        println!(
            "{:>8} {:>12} {:>12} {:>9} {:>14}",
            "L2", "mips64 cyc", "cheri cyc", "overhead", "cheri L2 miss"
        );
    }
    for (i, l2_kib) in L2_SIZES_KIB.into_iter().enumerate() {
        let m = metrics(&reports[i * 2]);
        let c = metrics(&reports[i * 2 + 1]);
        let overhead = (c.cycles as f64 / m.cycles as f64 - 1.0) * 100.0;
        if opts.json {
            println!(
                "{{\"experiment\":\"cache_sweep\",\"l2_kib\":{l2_kib},\"mips64_cycles\":{},\"cheri_cycles\":{},\"overhead_pct\":{},\"cheri_l2_misses\":{}}}",
                m.cycles,
                c.cycles,
                cli::json_f64(overhead),
                c.l2_misses
            );
        } else {
            println!(
                "{:>6}K {:>12} {:>12} {:>+8.1}% {:>14}",
                l2_kib, m.cycles, c.cycles, overhead, c.l2_misses,
            );
        }
    }
    if opts.json {
        return;
    }
    println!();
    println!(
        "expected shape: the overhead peaks where the pure-capability\n\
         working set spills an L2 that still holds the legacy working set,\n\
         and shrinks once the cache comfortably holds both (or neither)."
    );
}
