//! # cheri-cap — the CHERI capability model
//!
//! This crate implements the architectural capability type at the heart of
//! the CheriABI paper (Davis et al., ASPLOS 2019, §2): a pointer that carries
//! bounds, permissions, a seal, and an out-of-band validity *tag*, and that
//! can only be **derived** (never forged) from existing valid capabilities by
//! monotonically non-increasing operations.
//!
//! Three properties from the paper are enforced by construction:
//!
//! * **Provenance validation** — the only public constructors are
//!   [`Capability::null`] (untagged) and root-capability creation via
//!   [`Capability::root`]; everything else derives from an existing value.
//! * **Capability integrity** — the tagged-memory crate clears tags whenever
//!   raw data overlaps a capability granule; this crate never re-tags.
//! * **Monotonicity** — [`Capability::set_bounds`], [`Capability::and_perms`]
//!   and address arithmetic can narrow but never widen authority; attempts
//!   trap ([`CapFault`]) or clear the tag, exactly as the ISA specifies.
//!
//! Bounds are stored compressed in the 128-bit format ([`CapFormat::C128`],
//! a CHERI-Concentrate-style exponent/mantissa scheme implemented in
//! [`compress`]) or exactly in the 256-bit format ([`CapFormat::C256`]).
//! Compression is what forces allocator padding and alignment in the paper
//! (§2 footnote 2); [`compress::representable_length`] and
//! [`compress::representable_alignment_mask`] are the CRRL/CRAM equivalents.
//!
//! In addition to the architectural state, every capability carries
//! *non-architectural* [`Provenance`] metadata (owning principal and
//! derivation source). This implements the paper's **abstract capability**
//! (§3): the simulation uses it to check that a capability observed in a
//! process always traces back to that process's root, across swap,
//! debugging, and kernel crossings.
//!
//! ```
//! use cheri_cap::{Capability, CapFormat, Perms, PrincipalId, CapSource};
//!
//! # fn main() -> Result<(), cheri_cap::CapFault> {
//! let root = Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot);
//! // Narrow to a 4 KiB user mapping, read/write only.
//! let mapping = root
//!     .with_addr(0x1_0000)
//!     .set_bounds(0x1000, true)?
//!     .and_perms(Perms::LOAD | Perms::STORE | Perms::LOAD_CAP | Perms::STORE_CAP);
//! assert_eq!(mapping.base(), 0x1_0000);
//! assert_eq!(mapping.length(), 0x1000);
//! assert!(!mapping.perms().contains(Perms::EXECUTE));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capability;
pub mod compress;
mod error;
mod otype;
mod perms;
mod provenance;

pub use capability::{CapFormat, Capability, CAP_SIZE_C128, CAP_SIZE_C256, TAG_GRANULE};
pub use error::CapFault;
pub use otype::OType;
pub use perms::Perms;
pub use provenance::{CapSource, PrincipalAllocator, PrincipalId, Provenance};
