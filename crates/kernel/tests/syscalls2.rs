//! Second wave of kernel scenario tests: blocking semantics, fd lifecycle,
//! signal defaults, memfs, and error paths.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, RunOutcome, SpawnOpts, Sys};
use cheri_rtld::{Program, ProgramBuilder};

fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

fn program(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> Program {
    let mut pb = ProgramBuilder::new("s2");
    let mut exe = pb.object("s2");
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts_for(abi));
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

fn run(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> (ExitStatus, String) {
    let mut k = Kernel::new(KernelConfig::default());
    k.run_program(&program(abi, body), &SpawnOpts::new(abi))
        .expect("loads")
}

/// A blocked pipe read is woken by the child's write (true blocking, not
/// polling: the parent blocks first, the scheduler runs the child).
#[test]
fn blocked_read_woken_by_child_write() {
    for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
        let (status, _) = run(abi, |f| {
            f.enter(160);
            f.addr_of_stack(Ptr(0), 16, 8);
            f.set_arg_ptr(0, Ptr(0));
            f.syscall(Sys::Pipe as i64);
            f.load(Val(6), Ptr(0), 0, Width::W, false);
            f.load(Val(7), Ptr(0), 4, Width::W, false);
            f.syscall(Sys::Fork as i64);
            f.ret_val_to(Val(0));
            let parent = f.label();
            f.bnez(Val(0), parent);
            // child: spin a while, then write the byte that unblocks.
            f.li(Val(1), 0);
            let spin = f.label();
            f.bind(spin);
            f.add_imm(Val(1), Val(1), 1);
            f.li(Val(2), 20_000);
            f.sub(Val(3), Val(1), Val(2));
            f.bnez(Val(3), spin);
            f.addr_of_stack(Ptr(1), 32, 8);
            f.li(Val(2), 0x33);
            f.store(Val(2), Ptr(1), 0, Width::B);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 1);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.li(Val(0), 0);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
            // parent: read blocks until the child writes.
            f.bind(parent);
            f.addr_of_stack(Ptr(2), 48, 8);
            f.set_arg_val(0, Val(6));
            f.set_arg_ptr(1, Ptr(2));
            f.li(Val(1), 1);
            f.set_arg_val(2, Val(1));
            f.syscall(Sys::Read as i64);
            f.load(Val(2), Ptr(2), 0, Width::B, false);
            f.set_arg_val(0, Val(2));
            f.syscall(Sys::Exit as i64);
        });
        assert_eq!(status, ExitStatus::Code(0x33), "{abi}");
    }
}

/// Closing the write end gives the reader EOF (read returns 0).
#[test]
fn pipe_eof_after_writer_close() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.enter(96);
        f.addr_of_stack(Ptr(0), 16, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, Width::W, false);
        f.load(Val(7), Ptr(0), 4, Width::W, false);
        f.set_arg_val(0, Val(7));
        f.syscall(Sys::Close as i64);
        f.addr_of_stack(Ptr(1), 32, 8);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(1));
        f.li(Val(1), 8);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        f.ret_val_to(Val(2));
        f.add_imm(Val(2), Val(2), 77); // 0 + 77
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Exit as i64);
    });
    assert_eq!(status, ExitStatus::Code(77));
}

/// An unhandled signal terminates with the classic default action.
#[test]
fn unhandled_signal_kills() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.syscall(Sys::Getpid as i64);
        f.ret_val_to(Val(0));
        f.set_arg_val(0, Val(0));
        f.li(Val(1), 15); // SIGTERM-ish
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Kill as i64);
        // never reached: the signal is delivered at the next dispatch
        let spin = f.label();
        f.bind(spin);
        f.jmp(spin);
    });
    assert_eq!(status, ExitStatus::Signaled(15));
}

/// waitpid with no children: ECHILD; kill of a non-process: ESRCH.
#[test]
fn wait_and_kill_error_paths() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.li(Val(0), 0);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Waitpid as i64);
        f.ret_val_to(Val(1)); // -ECHILD = -10
        f.li(Val(0), 9999);
        f.set_arg_val(0, Val(0));
        f.li(Val(2), 9);
        f.set_arg_val(1, Val(2));
        f.syscall(Sys::Kill as i64);
        f.ret_val_to(Val(3)); // -ESRCH = -3
        f.mul_sum_exit(Val(1), Val(3));
    });
    assert_eq!(status, ExitStatus::Code(-10 * 100 + -3));
}

trait TestExt {
    fn mul_sum_exit(&mut self, a: Val, b: Val);
}

impl TestExt for FnBuilder<'_> {
    fn mul_sum_exit(&mut self, a: Val, b: Val) {
        self.li(Val(6), 100);
        self.mul(Val(6), Val(6), a);
        self.add(Val(6), Val(6), b);
        self.set_arg_val(0, Val(6));
        self.syscall(Sys::Exit as i64);
    }
}

/// memfs: create, write, unlink; a reopen after unlink fails with ENOENT.
#[test]
fn memfs_unlink_semantics() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.enter(96);
        f.addr_of_stack(Ptr(0), 16, 8);
        f.li(Val(0), i64::from_le_bytes(*b"tmpfile\0"));
        f.store(Val(0), Ptr(0), 0, Width::D);
        // create
        f.set_arg_ptr(0, Ptr(0));
        f.li(Val(1), 7);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Open as i64);
        f.ret_val_to(Val(6));
        f.set_arg_val(0, Val(6));
        f.syscall(Sys::Close as i64);
        // unlink
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Unlink as i64);
        f.ret_val_to(Val(2));
        // reopen without O_CREAT: ENOENT
        f.set_arg_ptr(0, Ptr(0));
        f.li(Val(1), 0);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Open as i64);
        f.ret_val_to(Val(3)); // -2
        f.mul_sum_exit(Val(2), Val(3));
    });
    assert_eq!(status, ExitStatus::Code(-2));
}

/// fork duplicates the fd table: the child writes through an inherited fd
/// and the parent reads it after reaping.
#[test]
fn fork_inherits_file_descriptors() {
    let mut k = Kernel::new(KernelConfig::default());
    let p = program(AbiMode::CheriAbi, |f| {
        f.enter(160);
        f.addr_of_stack(Ptr(0), 16, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, Width::W, false);
        f.load(Val(7), Ptr(0), 4, Width::W, false);
        f.syscall(Sys::Fork as i64);
        f.ret_val_to(Val(0));
        let parent = f.label();
        f.bnez(Val(0), parent);
        f.addr_of_stack(Ptr(1), 32, 8);
        f.li(Val(1), 0x5a);
        f.store(Val(1), Ptr(1), 0, Width::B);
        f.set_arg_val(0, Val(7)); // inherited write end
        f.set_arg_ptr(1, Ptr(1));
        f.li(Val(1), 1);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        f.li(Val(0), 0);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
        f.bind(parent);
        f.li(Val(1), 0);
        f.set_arg_val(0, Val(1));
        f.syscall(Sys::Waitpid as i64);
        f.addr_of_stack(Ptr(2), 48, 8);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(2));
        f.li(Val(1), 1);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        f.load(Val(2), Ptr(2), 0, Width::B, false);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Exit as i64);
    });
    let (status, _) = k
        .run_program(&p, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(status, ExitStatus::Code(0x5a));
    // All pipes torn down once both processes exited.
    assert_eq!(k.stats.spawns, 1);
}

/// kevent wait blocks until the watched fd becomes readable.
#[test]
fn kevent_wait_blocks_until_ready() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.enter(224);
        f.addr_of_stack(Ptr(0), 16, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, Width::W, false);
        f.load(Val(7), Ptr(0), 4, Width::W, false);
        // register interest in the (empty) read end
        f.li(Val(5), 16);
        f.set_arg_val(0, Val(5));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(1));
        f.li(Val(0), 0xabc);
        f.store(Val(0), Ptr(1), 0, Width::D);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(1));
        f.syscall(Sys::KeventRegister as i64);
        // fork: the child makes it ready while the parent waits.
        f.syscall(Sys::Fork as i64);
        f.ret_val_to(Val(0));
        let parent = f.label();
        f.bnez(Val(0), parent);
        f.addr_of_stack(Ptr(2), 40, 8);
        f.li(Val(1), 1);
        f.store(Val(1), Ptr(2), 0, Width::B);
        f.set_arg_val(0, Val(7));
        f.set_arg_ptr(1, Ptr(2));
        f.li(Val(1), 1);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        f.li(Val(0), 0);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
        f.bind(parent);
        f.addr_of_stack(Ptr(3), 64, 64);
        f.set_arg_ptr(0, Ptr(3));
        f.li(Val(1), 2);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::KeventWait as i64);
        // the udata pointer round-trips with its tag: deref it.
        f.load_ptr(Ptr(4), Ptr(3), 16);
        f.load(Val(2), Ptr(4), 0, Width::D, false);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Exit as i64);
    });
    assert_eq!(status, ExitStatus::Code(0xabc));
}

/// Deadlock detection: a single process reading an empty pipe it also
/// holds the write end of (but never writes) deadlocks the scheduler
/// rather than spinning forever.
#[test]
fn self_deadlock_is_detected() {
    let mut k = Kernel::new(KernelConfig::default());
    let p = program(AbiMode::CheriAbi, |f| {
        f.enter(96);
        f.addr_of_stack(Ptr(0), 16, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, Width::W, false);
        f.addr_of_stack(Ptr(1), 32, 8);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(1));
        f.li(Val(1), 1);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64); // blocks forever
        f.sys_exit_like(0);
    });
    let pid = k.spawn(&p, &SpawnOpts::new(AbiMode::CheriAbi)).unwrap();
    assert_eq!(k.run(10_000_000), RunOutcome::Deadlock);
    assert!(k.exit_status(pid).is_none());
}

trait ExitLike {
    fn sys_exit_like(&mut self, v: i64);
}
impl ExitLike for FnBuilder<'_> {
    fn sys_exit_like(&mut self, v: i64) {
        self.li(Val(0), v);
        self.set_arg_val(0, Val(0));
        self.syscall(Sys::Exit as i64);
    }
}

/// sysctl honours the caller's length: a short oldlen truncates and the
/// true size is written back.
#[test]
fn sysctl_length_protocol() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.enter(96);
        f.addr_of_stack(Ptr(0), 16, 16);
        f.addr_of_stack(Ptr(1), 40, 8);
        f.li(Val(0), 4); // only 4 bytes of space
        f.store(Val(0), Ptr(1), 0, Width::D);
        f.li(Val(1), 1);
        f.set_arg_val(0, Val(1));
        f.set_arg_ptr(1, Ptr(0));
        f.set_arg_ptr(2, Ptr(1));
        f.syscall(Sys::Sysctl as i64);
        // written-back length = 13 ("CheriBSD-sim\0")
        f.load(Val(2), Ptr(1), 0, Width::D, false);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Exit as i64);
    });
    assert_eq!(status, ExitStatus::Code(13));
}
