//! Regenerates **Figure 4**: median overheads (instructions, cycles, L2
//! cache misses) of CheriABI relative to the mips64 baseline, with
//! interquartile ranges over several input seeds, for the MiBench-like and
//! SPEC-like workloads plus `initdb-dynamic`.

use cheri_bench::{iqr, measure, median};
use cheri_corpus::minidb::build_initdb;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::AbiMode;
use cheri_rtld::Program;
use cheri_workloads::all;

const SEEDS: [u64; 5] = [3, 7, 13, 29, 61];

fn row(name: &str, build: &dyn Fn(CodegenOpts, u64) -> Program) {
    let mut instr = Vec::new();
    let mut cycles = Vec::new();
    let mut l2 = Vec::new();
    for &seed in &SEEDS {
        let (sm, mm) = measure(&build(CodegenOpts::mips64(), seed), AbiMode::Mips64, false);
        let (sc, mc) = measure(&build(CodegenOpts::purecap(), seed), AbiMode::CheriAbi, false);
        assert_eq!(sm, sc, "{name}: results differ between ABIs");
        let o = mc.overhead_vs(&mm);
        instr.push((o.instructions - 1.0) * 100.0);
        cycles.push((o.cycles - 1.0) * 100.0);
        l2.push((o.l2_misses - 1.0) * 100.0);
    }
    println!(
        "{:<24} {:>+7.1}% ({:>5.1}) {:>+7.1}% ({:>5.1}) {:>+7.1}% ({:>5.1})",
        name,
        median(&mut instr.clone()),
        iqr(&mut instr.clone()),
        median(&mut cycles.clone()),
        iqr(&mut cycles.clone()),
        median(&mut l2.clone()),
        iqr(&mut l2.clone()),
    );
}

fn main() {
    println!("Figure 4: CheriABI overhead vs mips64 baseline, median (IQR) over {} seeds", SEEDS.len());
    println!(
        "{:<24} {:>16} {:>16} {:>16}",
        "benchmark", "instructions", "cycles", "l2cache misses"
    );
    for w in all() {
        row(w.name, &|opts, seed| (w.build)(opts, seed));
    }
    // initdb-dynamic: the record count varies slightly with the seed so the
    // IQR is meaningful.
    row("initdb-dynamic", &|opts, seed| {
        build_initdb(opts, 360 + (seed % 5) as i64 * 20)
    });
    println!();
    println!(
        "Paper (Figure 4) shape: most MiBench kernels within noise (±5%);\n\
         pointer-heavy workloads (qsort, patricia, astar, xalancbmk) show\n\
         positive instruction/cycle overheads and elevated L2 misses from\n\
         the doubled pointer footprint; initdb-dynamic ≈ +6.8% cycles."
    );
}
