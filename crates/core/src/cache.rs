//! Content-addressed on-disk cache for [`CaseReport`]s.
//!
//! A [`crate::harness::RunSpec`] is plain data, so an unchanged case has an
//! unchanged identity — and because each case runs in a fresh deterministic
//! kernel, an unchanged identity means an unchanged report. The cache
//! exploits that: before executing a spec, [`crate::harness::Harness::run_session`]
//! asks the cache for the report of an identical earlier run and skips the
//! guest entirely on a hit. A warm re-run of an unchanged experiment
//! executes zero guest instructions and emits byte-identical output.
//!
//! **Keying.** The cache key is 64-bit FNV-1a over the canonical JSON of
//! the spec's *identity*: the [`ProgramSpec`], codegen options, process
//! ABI, sanitizer flag, seed, instruction budget, kernel configuration and
//! L2 override — plus a caller-supplied *salt* (the codegen fingerprint
//! from `cheri_isa::codegen::fingerprint`, so any change to instruction
//! selection invalidates every entry wholesale). The spec's display name,
//! wall-clock deadline, execution tier (`exec_mode`, plus the legacy
//! `fast_path` key), oracle mode (`oracle`) and lockstep cadence
//! (`oracle_every`) are *not* part of the identity: none of them changes
//! what the guest computes — the execution tiers and the oracle are gated
//! to produce byte-identical guest metrics. The membrane mode (`abi_mode`) *is* identity: a hardened run
//! observes different allocator behaviour (quarantine, repairs) than a
//! strict one. Stored entries embed the full identity JSON
//! and every load re-compares it, so an FNV collision degrades to a cache
//! miss, never a wrong report.
//!
//! **What is never cached.** Panicked and deadline-exceeded outcomes
//! (environmental, not functions of the spec), oracle divergences (a
//! simulator bug must resurface on every run until fixed), traced runs
//! (the capability CDF is not serialized, and Figure 5 wants a fresh
//! trace), and anything run with `weaken_sem`, `weaken_quarantine` or
//! `weaken_flush` (deliberately wrong semantics / a deliberately disabled
//! membrane must never poison — or be served from — the shared cache).
//!
//! **On disk.** One JSON file per entry under the cache directory
//! (default `target/harness-cache/`), named by the hex key. Writes go to a
//! temporary file first and are renamed into place, so concurrent workers
//! and even concurrent processes can share a directory; a torn or corrupt
//! entry fails to parse and reads as a miss.

use crate::harness::{execute_spec, CaseOutcome, CaseReport, RunSpec};
use crate::json::{self, Json};
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime};

/// A versioned fingerprint of the *runtime* — kernel, VM, CPU, loader —
/// as observed through a fixed probe trace: a scripted VM scenario
/// (map, demand fault, fork, COW write, swap round trip, mprotect,
/// teardown) plus one tiny guest program executed under each ABI, with
/// every resulting counter folded into an FNV-1a hash. Any behavioural
/// change to paging, scheduling, the cost model or instruction execution
/// changes some counter and therefore the revision.
///
/// Computed once per process (the probes are two sub-millisecond guest
/// runs) and combined with `cheri_isa::codegen::fingerprint()` in
/// [`session_salt`] so cached [`CaseReport`]s are invalidated by runtime
/// changes as well as codegen changes.
#[must_use]
pub fn runtime_revision() -> u64 {
    static REV: OnceLock<u64> = OnceLock::new();
    *REV.get_or_init(compute_runtime_revision)
}

fn compute_runtime_revision() -> u64 {
    use crate::spec::{ProgramSpec, Registry};
    use cheri_cap::{CapFormat, PrincipalId};
    use cheri_isa::codegen::CodegenOpts;
    use cheri_kernel::AbiMode;
    use cheri_vm::{Backing, Prot, Vm};
    use std::fmt::Write as _;

    let mut log = String::new();
    // Scripted VM trace: every paging mechanism leaves a counter.
    let mut vm = Vm::new(64);
    let a = vm.create_space(PrincipalId::from_raw(7), CapFormat::C128);
    let base = vm
        .map(a, None, 3 * 4096, Prot::rw(), Backing::Zero, "probe")
        .expect("probe map");
    vm.write_u64(a, base + 8, 0x1234).expect("probe write");
    let b = vm.fork_space(a).expect("probe fork");
    vm.write_u64(a, base + 8, 0x5678).expect("probe cow write");
    assert!(vm.swap_out(a, base).expect("probe swap_out"));
    let readback = vm.read_u64(a, base + 8).expect("probe swap_in");
    vm.protect(a, base, 4096, Prot::READ)
        .expect("probe protect");
    vm.unmap(a, base + 4096, 4096).expect("probe unmap");
    vm.destroy_space(b);
    let _ = write!(
        log,
        "vm:{:?}:{}:{}:{};",
        vm.stats,
        vm.epoch(),
        vm.phys.allocated_frames(),
        readback
    );
    // One tiny guest under each ABI: exercises codegen's runtime half —
    // loader, kernel entry/exit, scheduler charges, cache cost model.
    let registry = Registry::builtin();
    for (label, opts, abi) in [
        ("purecap", CodegenOpts::purecap(), AbiMode::CheriAbi),
        ("mips64", CodegenOpts::mips64(), AbiMode::Mips64),
    ] {
        let spec = RunSpec::new(
            format!("runtime-probe-{label}"),
            ProgramSpec::Spin { iters: 500 },
            opts,
            abi,
        );
        let report = execute_spec(&registry, &spec);
        let _ = write!(log, "{label}:{:?}:{:?};", report.outcome, report.metrics);
    }
    json::fnv1a(log.as_bytes())
}

/// The report-cache salt for this build *and* this runtime:
/// `cheri_isa::codegen::fingerprint()` (instruction selection) combined
/// with [`runtime_revision`] (kernel/VM/CPU behaviour). Use this when
/// opening a [`ReportCache`] that outlives the current binary.
#[must_use]
pub fn session_salt() -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&cheri_isa::codegen::fingerprint().to_le_bytes());
    bytes[8..].copy_from_slice(&runtime_revision().to_le_bytes());
    json::fnv1a(&bytes)
}

/// Process-global sequence for temporary-file names. A per-handle counter
/// would reset to zero for every `ReportCache` opened on the same
/// directory, so two handles in one process storing the same key could
/// race to the *same* tmp path and tear each other's rename. One counter
/// per process makes every `(pid, nonce, seq)` triple unique.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A per-process nonce folded into tmp names, guarding the remaining
/// cross-process hole: pid reuse while a crashed writer's tmp file still
/// sits in a shared cache directory.
fn tmp_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        let clock = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0u128, |d| d.as_nanos());
        let mut bytes = [0u8; 20];
        bytes[..4].copy_from_slice(&std::process::id().to_le_bytes());
        bytes[4..].copy_from_slice(&clock.to_le_bytes());
        json::fnv1a(&bytes)
    })
}

/// A handle to one cache directory + salt.
#[derive(Debug)]
pub struct ReportCache {
    dir: PathBuf,
    salt: u64,
    /// Entry paths written by *this* handle, exempt from [`ReportCache::prune`]:
    /// the session that just produced a report must never lose it to its
    /// own size bound (mtime granularity makes "newest by timestamp" an
    /// unreliable substitute).
    written: Mutex<HashSet<PathBuf>>,
}

impl ReportCache {
    /// Opens (creating if needed) a cache rooted at `dir`, salted with the
    /// caller's codegen fingerprint.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, salt: u64) -> io::Result<ReportCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ReportCache {
            dir,
            salt,
            written: Mutex::new(HashSet::new()),
        })
    }

    /// Opens the conventional location, `<target dir>/harness-cache/`
    /// (honouring `CARGO_TARGET_DIR`).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open_default(salt: u64) -> io::Result<ReportCache> {
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map_or_else(|| PathBuf::from("target"), PathBuf::from);
        ReportCache::new(target.join("harness-cache"), salt)
    }

    /// The directory entries live in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical identity of `spec` under this cache's salt — every
    /// field that can change what the guest computes, nothing else.
    #[must_use]
    pub fn identity(&self, spec: &RunSpec) -> Json {
        let mut fields = vec![("salt".to_string(), Json::u64(self.salt))];
        if let Json::Obj(all) = spec.to_json() {
            fields.extend(all.into_iter().filter(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "name"
                        | "deadline_nanos"
                        | "trace"
                        | "fast_path"
                        | "exec_mode"
                        | "oracle"
                        | "oracle_every"
                )
            }));
        }
        Json::Obj(fields)
    }

    /// The content key for `spec`: FNV-1a over its canonical identity.
    #[must_use]
    pub fn key(&self, spec: &RunSpec) -> u64 {
        json::fnv1a(self.identity(spec).to_string().as_bytes())
    }

    fn entry_path(&self, spec: &RunSpec) -> PathBuf {
        self.dir.join(format!("{:016x}.json", self.key(spec)))
    }

    /// The cached report for `spec`, if one exists — with the entry's
    /// stored identity re-checked against the spec, so a key collision
    /// reads as a miss. The report's name is rewritten to the spec's
    /// (names are display-only and not part of the identity).
    #[must_use]
    pub fn load(&self, spec: &RunSpec) -> Option<CaseReport> {
        if spec.trace || spec.weaken_sem || spec.weaken_quarantine || spec.weaken_flush {
            return None;
        }
        let text = fs::read_to_string(self.entry_path(spec)).ok()?;
        let entry = json::parse(&text).ok()?;
        if *entry.get("identity")? != self.identity(spec) {
            return None;
        }
        let mut report = CaseReport::from_json(entry.get("report")?).ok()?;
        report.name = spec.name.clone();
        Some(report)
    }

    /// Records `report` as the result of `spec`. Traced specs,
    /// weakened-semantics specs, panicked / deadline-exceeded outcomes and
    /// oracle divergences are never recorded; I/O failures are swallowed
    /// (a cache that cannot write is merely cold).
    pub fn store(&self, spec: &RunSpec, report: &CaseReport) {
        if spec.trace
            || spec.weaken_sem
            || spec.weaken_quarantine
            || spec.weaken_flush
            || matches!(
                report.outcome,
                CaseOutcome::Panicked(_)
                    | CaseOutcome::DeadlineExceeded
                    | CaseOutcome::Divergence(_)
            )
        {
            return;
        }
        let entry = Json::obj(vec![
            ("identity", self.identity(spec)),
            ("report", report.to_json()),
        ]);
        let path = self.entry_path(spec);
        // pid + process nonce + process-global sequence: unique even when
        // several handles in several processes store the same key into a
        // shared directory at once. The rename then lets last-writer-win
        // without any reader ever seeing a torn entry.
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}.{:08x}.{}",
            self.key(spec),
            std::process::id(),
            tmp_nonce() & 0xffff_ffff,
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut text = entry.to_string();
        text.push('\n');
        if fs::write(&tmp, text).is_ok() {
            if fs::rename(&tmp, &path).is_ok() {
                self.written
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(path);
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Shrinks the cache directory to at most `limit_bytes` of entries by
    /// deleting the least-recently-modified entry files first. Entries
    /// written through this handle are never deleted, so a session can
    /// prune after storing its own reports without losing any of them —
    /// even if the limit is too small to honour (the directory may then
    /// stay above the limit).
    ///
    /// Returns `(entries_removed, entry_bytes_remaining)`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory cannot be listed;
    /// errors on individual files are tolerated — in a shared directory a
    /// concurrent session (or a fleet worker) may remove or replace any
    /// entry between our listing and our unlink, and a vanished entry just
    /// counts as already pruned.
    pub fn prune(&self, limit_bytes: u64) -> io::Result<(usize, u64)> {
        self.sweep_orphan_tmps(ORPHAN_TMP_MAX_AGE);
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        let mut total: u64 = 0;
        for dirent in fs::read_dir(&self.dir)? {
            let Ok(dirent) = dirent else { continue };
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            // The entry can vanish between readdir and stat: a concurrent
            // prune got there first. Skip it — it is already "removed".
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            total += meta.len();
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((path, meta.len(), mtime));
        }
        // Oldest first; name breaks timestamp ties deterministically.
        entries.sort_by(|x, y| x.2.cmp(&y.2).then_with(|| x.0.cmp(&y.0)));
        let written = self
            .written
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut removed = 0usize;
        for (path, len, _) in entries {
            if total <= limit_bytes {
                break;
            }
            if written.contains(&path) {
                continue;
            }
            match fs::remove_file(&path) {
                Ok(()) => {
                    removed += 1;
                    total -= len;
                }
                // Vanished underneath us: its bytes are gone either way.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    total = total.saturating_sub(len);
                }
                // Anything else (permissions, I/O): leave the bytes in the
                // total and keep going — prune is best-effort.
                Err(_) => {}
            }
        }
        Ok((removed, total))
    }

    /// Removes abandoned temporary files — `*.tmp.*` debris older than
    /// `max_age`, left behind by writers that crashed (or were chaos-killed)
    /// between write and rename. Recent tmp files are left alone: they may
    /// belong to a live writer about to rename. Errors are swallowed;
    /// sweeping is best-effort hygiene.
    pub fn sweep_orphan_tmps(&self, max_age: Duration) {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return;
        };
        let now = SystemTime::now();
        for dirent in dir.flatten() {
            let path = dirent.path();
            let is_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp."));
            if !is_tmp {
                continue;
            }
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok());
            if age.is_some_and(|a| a >= max_age) {
                let _ = fs::remove_file(&path);
            }
        }
    }
}

/// How stale a `*.tmp.*` file must be before [`ReportCache::prune`] sweeps
/// it as writer debris. Generous: a live writer holds a tmp file for
/// microseconds, a crashed one forever.
const ORPHAN_TMP_MAX_AGE: Duration = Duration::from_secs(3600);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{execute_spec, Harness, RunSpec, SessionOpts};
    use crate::json;
    use crate::spec::{single_main, ProgramSpec, Registry};
    use cheri_isa::codegen::CodegenOpts;
    use cheri_kernel::AbiMode;
    use cheri_rtld::Program;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "cheriabi-cache-test-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::SeqCst)
            ));
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn exit_spec(name: &str, seed: u64) -> RunSpec {
        RunSpec::new(
            name,
            ProgramSpec::Exit { code: 0 },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        )
        .with_seed(seed)
    }

    #[test]
    fn hit_returns_a_byte_identical_report() {
        let tmp = TempDir::new("roundtrip");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        assert!(cache.load(&spec).is_none(), "cold cache misses");
        let cold = execute_spec(&registry, &spec);
        cache.store(&spec, &cold);
        let warm = cache.load(&spec).expect("warm cache hits");
        assert_eq!(warm, cold);
        assert_eq!(
            warm.to_json().to_string(),
            cold.to_json().to_string(),
            "byte-identical re-encode"
        );
    }

    #[test]
    fn any_identity_field_change_misses() {
        let tmp = TempDir::new("identity");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        cache.store(&spec, &execute_spec(&registry, &spec));
        assert!(cache.load(&spec).is_some());

        // Every identity field change must miss.
        assert!(cache.load(&spec.clone().with_seed(6)).is_none(), "seed");
        assert!(
            cache.load(&spec.clone().with_budget(123)).is_none(),
            "budget"
        );
        assert!(cache.load(&spec.clone().with_asan(true)).is_none(), "asan");
        assert!(
            cache.load(&spec.clone().with_l2_size(65536)).is_none(),
            "l2"
        );
        let mut other_program = spec.clone();
        other_program.program = ProgramSpec::Exit { code: 1 };
        assert!(cache.load(&other_program).is_none(), "program");
        let mut other_opts = spec.clone();
        other_opts.opts = CodegenOpts::purecap_small_clc();
        assert!(cache.load(&other_opts).is_none(), "codegen opts");
        let mut other_abi = spec.clone();
        other_abi.opts = CodegenOpts::mips64();
        other_abi.abi = AbiMode::Mips64;
        assert!(cache.load(&other_abi).is_none(), "abi");

        // The execution tier is not identity either: every tier produces
        // byte-identical guest metrics by contract.
        for mode in [
            crate::harness::ExecMode::SingleStep,
            crate::harness::ExecMode::Superblock,
            crate::harness::ExecMode::Template,
        ] {
            assert!(
                cache.load(&spec.clone().with_exec_mode(mode)).is_some(),
                "{mode:?} is not identity"
            );
        }
        assert!(
            cache.load(&spec.clone().with_fast_path(false)).is_some(),
            "the legacy fast_path alias is not identity"
        );

        // Name and deadline are display/scheduling concerns, not identity.
        let renamed = cache
            .load(&spec.clone().with_deadline(Duration::from_secs(9)))
            .expect("deadline is not identity");
        assert_eq!(renamed.name, "case");
        let mut other_name = spec.clone();
        other_name.name = "same-program-other-name".to_string();
        let hit = cache.load(&other_name).expect("name is not identity");
        assert_eq!(hit.name, "same-program-other-name");
    }

    #[test]
    fn salt_change_invalidates_everything() {
        let tmp = TempDir::new("salt");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        let old = ReportCache::new(&tmp.0, 0xAAAA).expect("open cache");
        old.store(&spec, &execute_spec(&registry, &spec));
        assert!(old.load(&spec).is_some());
        let new = ReportCache::new(&tmp.0, 0xBBBB).expect("open cache");
        assert!(
            new.load(&spec).is_none(),
            "a new codegen fingerprint must miss the old entry"
        );
    }

    #[test]
    fn nondeterministic_outcomes_are_not_cached() {
        let tmp = TempDir::new("skip");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();

        let boom = RunSpec::new(
            "boom",
            ProgramSpec::Boom,
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        );
        cache.store(&boom, &execute_spec(&registry, &boom));
        assert!(cache.load(&boom).is_none(), "panics are not cached");

        let slow = RunSpec::new(
            "slow",
            ProgramSpec::Spin { iters: i64::MAX },
            CodegenOpts::mips64(),
            AbiMode::Mips64,
        )
        .with_budget(50_000_000)
        .with_deadline(Duration::from_millis(1));
        cache.store(&slow, &execute_spec(&registry, &slow));
        assert!(
            cache.load(&slow).is_none(),
            "deadline misses are not cached"
        );

        let traced = exit_spec("traced", 0).with_trace(true);
        cache.store(&traced, &execute_spec(&registry, &traced));
        assert!(cache.load(&traced).is_none(), "traced runs are not cached");

        let weakened = exit_spec("weak-flush", 0).with_weaken_flush(true);
        cache.store(&weakened, &execute_spec(&registry, &weakened));
        assert!(
            cache.load(&weakened).is_none(),
            "weakened-flush runs are not cached"
        );
    }

    #[test]
    fn fault_plans_salt_the_key_but_retry_metadata_does_not() {
        use crate::fault::{FaultKind, FaultPlan};
        let tmp = TempDir::new("fault-identity");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();
        let plain = exit_spec("case", 5);
        cache.store(&plain, &execute_spec(&registry, &plain));
        assert!(cache.load(&plain).is_some());

        // Arming any fault plan changes what the guest may observe, so it
        // must miss the fault-free entry — and distinct plans must miss
        // each other.
        let flipped = plain
            .clone()
            .with_fault(FaultPlan::new(FaultKind::BitFlipData {
                after_writes: 3,
                bit: 0,
            }));
        assert!(cache.load(&flipped).is_none(), "fault plan salts the key");
        cache.store(&flipped, &execute_spec(&registry, &flipped));
        assert!(cache.load(&flipped).is_some());
        assert!(cache.load(&plain).is_some(), "fault-free entry untouched");
        let other_plan = plain
            .clone()
            .with_fault(FaultPlan::new(FaultKind::BitFlipData {
                after_writes: 3,
                bit: 1,
            }));
        assert!(cache.load(&other_plan).is_none(), "plans are distinct keys");
        let mut weakened = flipped.clone();
        weakened.fault.as_mut().expect("planned").weaken_tag_clear = true;
        assert!(
            cache.load(&weakened).is_none(),
            "the weakened hook is part of the identity"
        );

        // Retry metadata, by contrast, is attached after the store: a
        // session run with retries enabled produces the same keys and
        // byte-identical entries as one without.
        let specs = vec![exit_spec("retry", 7)];
        let with_retries = SessionOpts {
            cache: Some(&cache),
            retries: 3,
            ..SessionOpts::default()
        };
        let cold = Harness::new(1).run_session(&registry, &specs, &with_retries);
        assert_eq!(cold.cache_misses, 1);
        let without_retries = SessionOpts {
            cache: Some(&cache),
            ..SessionOpts::default()
        };
        let warm = Harness::new(1).run_session(&registry, &specs, &without_retries);
        assert_eq!(warm.cache_hits, 1, "retry settings never change the key");
        let report = &warm.reports[0].1;
        assert_eq!(report.retries, 0, "cached entries hold no retry metadata");
        assert!(!report.quarantined);
    }

    #[test]
    fn oracle_mode_is_not_identity_but_weakened_runs_never_cache() {
        use crate::harness::OracleMode;
        let tmp = TempDir::new("oracle");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        cache.store(&spec, &execute_spec(&registry, &spec));

        // The oracle only observes: a clean oracle run computes the same
        // guest results, so it may serve (and warm) the plain entry.
        assert!(
            cache
                .load(&spec.clone().with_oracle(OracleMode::Lockstep))
                .is_some(),
            "lockstep is not identity"
        );
        assert!(
            cache
                .load(&spec.clone().with_oracle(OracleMode::Replay))
                .is_some(),
            "replay is not identity"
        );

        // Weakened semantics are deliberately wrong: never served, never
        // stored.
        let weak = spec.clone().with_weaken_sem(true);
        assert!(cache.load(&weak).is_none(), "weakened runs never hit");
        cache.store(&weak, &execute_spec(&registry, &weak));
        assert!(cache.load(&weak).is_none(), "weakened runs never store");

        // A divergence outcome is a simulator bug; it must resurface on
        // every run rather than be replayed from the cache.
        let other = exit_spec("case", 6);
        let mut diverged = execute_spec(&registry, &other);
        diverged.outcome = CaseOutcome::Divergence("synthetic".to_string());
        cache.store(&other, &diverged);
        assert!(cache.load(&other).is_none(), "divergences are not cached");
    }

    #[test]
    fn abi_mode_is_identity_but_sampling_cadence_is_not() {
        use crate::harness::{MembraneMode, OracleMode};
        let tmp = TempDir::new("membrane");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        cache.store(&spec, &execute_spec(&registry, &spec));
        assert!(cache.load(&spec).is_some());

        // Hardened mode changes guest-visible allocator behaviour (and the
        // report grows a membrane block), so it must not serve — or
        // clobber — the strict entry.
        let hardened = spec.clone().with_abi_mode(MembraneMode::Hardened);
        assert!(cache.load(&hardened).is_none(), "abi_mode is identity");
        cache.store(&hardened, &execute_spec(&registry, &hardened));
        let hit = cache.load(&hardened).expect("hardened entries cache too");
        assert!(hit.membrane.is_some(), "evidence survives the round-trip");
        let strict_hit = cache.load(&spec).expect("strict entry untouched");
        assert!(strict_hit.membrane.is_none());

        // The sampling cadence only changes how often the oracle looks,
        // never what the guest computes: any cadence hits the plain entry.
        assert!(
            cache
                .load(
                    &spec
                        .clone()
                        .with_oracle(OracleMode::Lockstep)
                        .with_oracle_every(64)
                )
                .is_some(),
            "oracle_every is not identity"
        );

        // A weakened quarantine is deliberately unsafe scaffolding for the
        // attack table's self-test: never served, never stored.
        let weak = hardened.clone().with_weaken_quarantine(true);
        assert!(cache.load(&weak).is_none(), "weakened runs never hit");
        cache.store(&weak, &execute_spec(&registry, &weak));
        assert!(cache.load(&weak).is_none(), "weakened runs never store");
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let tmp = TempDir::new("corrupt");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        cache.store(&spec, &execute_spec(&registry, &spec));
        let path = cache.entry_path(&spec);
        fs::write(&path, "{ torn").expect("corrupt the entry");
        assert!(cache.load(&spec).is_none());
        // And a colliding key with a different identity must also miss.
        let other = exit_spec("case", 6);
        let entry = json::parse(&fs::read_to_string(cache.entry_path(&spec)).unwrap_or_default());
        drop(entry);
        fs::copy(cache.entry_path(&spec), cache.entry_path(&other)).ok();
        assert!(cache.load(&other).is_none(), "identity mismatch is a miss");
    }

    /// A lowerer that counts how many times it actually builds, so the
    /// "cache hit skips execution" contract is observable.
    static BUILDS: AtomicUsize = AtomicUsize::new(0);

    fn counting_lowerer(spec: &ProgramSpec, opts: CodegenOpts, _seed: u64) -> Option<Program> {
        use crate::guest::GuestOps;
        match spec {
            ProgramSpec::Workload { name } if name == "counted" => {
                BUILDS.fetch_add(1, Ordering::SeqCst);
                Some(single_main("counted", opts, |f| f.sys_exit_imm(0)))
            }
            _ => None,
        }
    }

    #[test]
    fn a_warm_session_skips_execution_entirely() {
        let tmp = TempDir::new("session");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let registry = Registry::builtin().with(counting_lowerer);
        let specs: Vec<RunSpec> = (0..6)
            .map(|i| {
                RunSpec::new(
                    format!("counted-{i}"),
                    ProgramSpec::Workload {
                        name: "counted".to_string(),
                    },
                    CodegenOpts::purecap(),
                    AbiMode::CheriAbi,
                )
                .with_seed(i)
            })
            .collect();
        let opts = SessionOpts {
            cache: Some(&cache),
            ..SessionOpts::default()
        };
        BUILDS.store(0, Ordering::SeqCst);
        let cold = Harness::new(3).run_session(&registry, &specs, &opts);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 6);
        assert_eq!(BUILDS.load(Ordering::SeqCst), 6, "cold run builds all");
        let warm = Harness::new(3).run_session(&registry, &specs, &opts);
        assert_eq!(warm.cache_hits, 6, "warm run is 100% hits");
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(BUILDS.load(Ordering::SeqCst), 6, "warm run builds nothing");
        for ((ia, a), (ib, b)) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(ia, ib);
            assert_eq!(
                a.to_json().to_string(),
                b.to_json().to_string(),
                "warm report is byte-identical (including cached wall time)"
            );
        }
    }

    #[test]
    fn prune_never_evicts_the_entry_just_written() {
        let tmp = TempDir::new("prune");
        let registry = Registry::builtin();
        // An earlier session leaves some entries behind.
        let old_session = ReportCache::new(&tmp.0, 1).expect("open cache");
        for seed in 0..4 {
            let spec = exit_spec("old", seed);
            old_session.store(&spec, &execute_spec(&registry, &spec));
        }
        drop(old_session);
        // A new session writes one entry, then prunes to a limit far too
        // small to hold anything.
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let fresh = exit_spec("fresh", 99);
        cache.store(&fresh, &execute_spec(&registry, &fresh));
        let (removed, remaining) = cache.prune(0).expect("prune");
        assert_eq!(removed, 4, "all foreign entries go");
        assert!(remaining > 0, "own entry still on disk");
        assert!(
            cache.load(&fresh).is_some(),
            "the entry just written must survive its own prune"
        );
        for seed in 0..4 {
            assert!(cache.load(&exit_spec("old", seed)).is_none());
        }
    }

    #[test]
    fn prune_is_a_no_op_under_the_limit() {
        let tmp = TempDir::new("prune-noop");
        let registry = Registry::builtin();
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let spec = exit_spec("case", 5);
        cache.store(&spec, &execute_spec(&registry, &spec));
        let (removed, remaining) = cache.prune(u64::MAX).expect("prune");
        assert_eq!(removed, 0);
        assert!(remaining > 0);
        assert!(cache.load(&spec).is_some());
    }

    #[test]
    fn concurrent_handles_storing_the_same_key_never_tear() {
        // The regression this guards: per-handle tmp sequences both start
        // at 0, so two handles in one process racing to store the same key
        // used to collide on the tmp path — one writer's rename could move
        // the other's half-written file into place.
        let tmp = TempDir::new("concurrent-store");
        let registry = Registry::builtin();
        let spec = exit_spec("case", 5);
        let report = execute_spec(&registry, &spec);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let dir = &tmp.0;
                let spec = &spec;
                let report = &report;
                scope.spawn(move || {
                    let cache = ReportCache::new(dir, 1).expect("open cache");
                    for _ in 0..25 {
                        cache.store(spec, report);
                        if let Some(hit) = cache.load(spec) {
                            assert_eq!(&hit, report, "no reader ever sees a torn entry");
                        }
                    }
                });
            }
        });
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        assert_eq!(cache.load(&spec).expect("entry present"), report);
        // Every rename landed or was cleaned up: no tmp debris remains.
        let leftovers: Vec<_> = fs::read_dir(&tmp.0)
            .expect("list")
            .flatten()
            .filter(|d| d.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leftover tmp files: {leftovers:?}");
    }

    #[test]
    fn concurrent_prunes_tolerate_entries_vanishing() {
        let tmp = TempDir::new("concurrent-prune");
        let registry = Registry::builtin();
        let seeder = ReportCache::new(&tmp.0, 1).expect("open cache");
        for seed in 0..12 {
            let spec = exit_spec("old", seed);
            seeder.store(&spec, &execute_spec(&registry, &spec));
        }
        drop(seeder);
        // Several sessions prune the same directory at once: each lists
        // all entries, then races the others to unlink them. Every
        // NotFound must read as "already pruned", never an error.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let dir = &tmp.0;
                scope.spawn(move || {
                    let cache = ReportCache::new(dir, 1).expect("open cache");
                    let (_, remaining) = cache.prune(0).expect("prune survives the race");
                    assert_eq!(remaining, 0, "limit 0 empties the directory");
                });
            }
        });
        let survivors = fs::read_dir(&tmp.0).expect("list").flatten().count();
        assert_eq!(survivors, 0);
    }

    #[test]
    fn prune_sweeps_stale_tmp_debris_but_spares_fresh_writers() {
        let tmp = TempDir::new("orphan-tmp");
        let cache = ReportCache::new(&tmp.0, 1).expect("open cache");
        let stale = tmp.0.join("deadbeefdeadbeef.tmp.1234.00c0ffee.0");
        let fresh = tmp.0.join("deadbeefdeadbeef.tmp.5678.00c0ffee.1");
        fs::write(&stale, "{ half-written").expect("stale tmp");
        fs::write(&fresh, "{ half-written").expect("fresh tmp");
        // Age the stale one past the sweep threshold.
        let old = SystemTime::now() - (ORPHAN_TMP_MAX_AGE + Duration::from_secs(60));
        let handle = fs::File::options()
            .write(true)
            .open(&stale)
            .expect("reopen stale tmp");
        handle
            .set_times(fs::FileTimes::new().set_modified(old))
            .expect("age the tmp file");
        drop(handle);
        cache.prune(u64::MAX).expect("prune");
        assert!(!stale.exists(), "crashed-writer debris is swept");
        assert!(fresh.exists(), "a live writer's tmp file is spared");
    }

    #[test]
    fn runtime_revision_is_deterministic_and_nonzero() {
        let a = runtime_revision();
        let b = runtime_revision();
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(
            session_salt(),
            cheri_isa::codegen::fingerprint(),
            "the salt must fold in more than the codegen fingerprint"
        );
    }
}
