//! Memory-safety demonstration: the same buggy C-style idioms run silently
//! (and corruptingly) under the legacy ABI, and are stopped cold by
//! CheriABI — including the kernel-as-confused-deputy case of Figure 3.
//!
//! ```sh
//! cargo run --release --example memory_safety
//! ```

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheriabi::guest::GuestOps;
use cheriabi::{AbiMode, ProgramBuilder, SpawnOpts, Sys, System};

fn run(name: &str, body: impl Fn(&mut FnBuilder<'_>) + Copy) {
    println!("== {name} ==");
    for (abi, opts) in [
        (AbiMode::Mips64, CodegenOpts::mips64()),
        (AbiMode::CheriAbi, CodegenOpts::purecap()),
    ] {
        let mut pb = ProgramBuilder::new(name);
        let mut exe = pb.object(name);
        {
            let mut f = FnBuilder::begin(&mut exe, "main", opts);
            body(&mut f);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut sys = System::new();
        let (status, _console) = sys
            .kernel
            .run_program(&program, &SpawnOpts::new(abi))
            .expect("loads");
        println!("  {abi:<9} -> {status:?}");
    }
    println!();
}

fn main() {
    // 1. Classic stack buffer overflow (off by one byte).
    run("stack overflow, off-by-one", |f| {
        f.enter(96);
        f.addr_of_stack(Ptr(0), 16, 32);
        f.li(Val(0), 0x41);
        f.store(Val(0), Ptr(0), 32, Width::B); // one past the end
        f.sys_exit_imm(0);
    });

    // 2. Heap overflow reaching a neighbouring allocation.
    run("heap overflow into neighbour", |f| {
        f.malloc_imm(Ptr(0), 32);
        f.malloc_imm(Ptr(1), 32);
        f.li(Val(0), 0x42);
        f.store(Val(0), Ptr(0), 40, Width::B); // lands in the neighbour
        f.sys_exit_imm(0);
    });

    // 3. Pointer forged from an integer (no provenance).
    run("forged pointer from integer", |f| {
        f.malloc_imm(Ptr(0), 32);
        f.ptr_to_int(Val(0), Ptr(0));
        f.int_to_ptr(Ptr(1), Val(0), Ptr(7)); // Ptr(7) = NULL: no provenance
        f.load(Val(1), Ptr(1), 0, Width::D, false);
        f.sys_exit_imm(0);
    });

    // 4. Confused deputy: read(2) told to fill a 16-byte buffer with 64
    //    bytes. The legacy kernel smashes the adjacent canary; the CheriABI
    //    kernel, using the user's own capability, returns EFAULT (§4,
    //    Figure 3).
    run("kernel confused deputy (read past buffer)", |f| {
        f.enter(224);
        f.addr_of_stack(Ptr(0), 32, 16); // undersized buffer
        f.addr_of_stack(Ptr(1), 56, 8); // canary
        f.li(Val(0), 0x7777);
        f.store(Val(0), Ptr(1), 0, Width::D);
        f.addr_of_stack(Ptr(2), 72, 8);
        f.set_arg_ptr(0, Ptr(2));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(2), 0, Width::W, false);
        f.load(Val(7), Ptr(2), 4, Width::W, false);
        f.addr_of_stack(Ptr(3), 88, 64);
        f.set_arg_val(0, Val(7));
        f.set_arg_ptr(1, Ptr(3));
        f.li(Val(1), 64);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(0)); // 16-byte buffer...
        f.li(Val(1), 64); // ...64-byte read
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        f.ret_val_to(Val(2));
        // exit(-1) if the canary was destroyed, else the syscall result.
        f.load(Val(3), Ptr(1), 0, Width::D, false);
        f.li(Val(4), 0x7777);
        let intact = f.label();
        f.beq(Val(3), Val(4), intact);
        f.li(Val(2), -1);
        f.bind(intact);
        f.sys_exit(Val(2));
    });

    println!(
        "reading the results: Code(0) or Code(64) = bug ran silently;\n\
         Code(-1) = silent corruption detected by the canary;\n\
         Code(-14) = kernel returned EFAULT instead of corrupting;\n\
         Fault(Cap(...)) = the capability system stopped the access."
    );
}
