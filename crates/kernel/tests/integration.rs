//! End-to-end kernel tests: guest programs built with the codegen DSL,
//! loaded by RTLD, executed on the CPU, under both process ABIs.

use cheri_cap::{CapFault, Perms};
use cheri_cpu::TrapCause;
use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, Pid, RunOutcome, SpawnOpts, Sys};
use cheri_rtld::{Program, ProgramBuilder};

fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

/// Builds a single-object program from a closure that emits `main`.
fn program(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> Program {
    let mut pb = ProgramBuilder::new("test");
    let mut exe = pb.object("test");
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts_for(abi));
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

fn run(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> (ExitStatus, String) {
    let prog = program(abi, body);
    let mut k = Kernel::new(KernelConfig::default());
    k.run_program(&prog, &SpawnOpts::new(abi)).expect("spawn")
}

fn both_abis() -> [AbiMode; 2] {
    [AbiMode::Mips64, AbiMode::CheriAbi]
}

/// exit(classic): both ABIs run the same portable source.
#[test]
fn exit_code_roundtrip() {
    for abi in both_abis() {
        let (status, _) = run(abi, |f| {
            f.li(Val(0), 42);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
        });
        assert_eq!(status, ExitStatus::Code(42), "{abi}");
    }
}

/// Hello world: a global string written to the console through the GOT.
#[test]
fn hello_world_both_abis() {
    for abi in both_abis() {
        let mut pb = ProgramBuilder::new("hello");
        let mut exe = pb.object("hello");
        exe.add_data("greeting", b"hello, world\n", 16);
        {
            let mut f = FnBuilder::begin(&mut exe, "main", opts_for(abi));
            f.load_global_ptr(Ptr(0), "greeting");
            f.li(Val(0), 1); // fd
            f.set_arg_val(0, Val(0));
            f.set_arg_ptr(1, Ptr(0));
            f.li(Val(1), 13);
            f.set_arg_val(2, Val(1));
            f.syscall(Sys::Write as i64);
            f.li(Val(0), 0);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let prog = pb.finish();
        let mut k = Kernel::new(KernelConfig::default());
        let (status, console) = k.run_program(&prog, &SpawnOpts::new(abi)).unwrap();
        assert_eq!(status, ExitStatus::Code(0), "{abi}");
        assert_eq!(console, "hello, world\n", "{abi}");
    }
}

/// A classic stack buffer overflow: runs to (corrupted) completion on
/// mips64, traps with a length violation under CheriABI.
#[test]
fn stack_overflow_detected_only_by_cheriabi() {
    let overflow = |f: &mut FnBuilder<'_>| {
        f.enter(96);
        f.addr_of_stack(Ptr(0), 16, 32); // 32-byte buffer
        f.li(Val(0), 0xaa);
        // store one byte past the end
        f.store(Val(0), Ptr(0), 32, Width::B);
        f.li(Val(1), 0);
        f.set_arg_val(0, Val(1));
        f.syscall(Sys::Exit as i64);
    };
    let (m, _) = run(AbiMode::Mips64, overflow);
    assert_eq!(m, ExitStatus::Code(0), "legacy ABI silently corrupts");
    let (c, _) = run(AbiMode::CheriAbi, overflow);
    assert_eq!(
        c,
        ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation)),
        "CheriABI catches the off-by-one"
    );
}

/// malloc returns a usable, bounded pointer; free works; use-beyond-bounds
/// traps under CheriABI.
#[test]
fn heap_allocation_roundtrip() {
    for abi in both_abis() {
        let (status, _) = run(abi, |f| {
            f.li(Val(0), 100);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::RtMalloc as i64);
            f.ret_ptr_to(Ptr(0));
            f.li(Val(1), 7);
            f.store(Val(1), Ptr(0), 0, Width::D);
            f.load(Val(2), Ptr(0), 0, Width::D, false);
            // exit(value read back)
            f.set_arg_ptr(0, Ptr(0)); // stash for free
            f.syscall(Sys::RtFree as i64);
            f.set_arg_val(0, Val(2));
            f.syscall(Sys::Exit as i64);
        });
        assert_eq!(status, ExitStatus::Code(7), "{abi}");
    }

    // Past-the-padded-end access traps under CheriABI only.
    let oob = |f: &mut FnBuilder<'_>| {
        f.li(Val(0), 100);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(0));
        f.li(Val(1), 1);
        f.store(Val(1), Ptr(0), 112, Width::B); // padded size is 112
        f.li(Val(0), 0);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
    };
    let (m, _) = run(AbiMode::Mips64, oob);
    assert_eq!(m, ExitStatus::Code(0));
    let (c, _) = run(AbiMode::CheriAbi, oob);
    assert_eq!(
        c,
        ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation))
    );
}

/// fork + pipe: child writes, parent reads, waitpid reaps.
#[test]
fn fork_pipe_waitpid() {
    for abi in both_abis() {
        let (status, console) = run(abi, |f| {
            f.enter(160);
            // pipe(fds) -> fds at frame offset 32
            f.addr_of_stack(Ptr(0), 32, 8);
            f.set_arg_ptr(0, Ptr(0));
            f.syscall(Sys::Pipe as i64);
            f.load(Val(6), Ptr(0), 0, Width::W, false); // read fd
            f.load(Val(7), Ptr(0), 4, Width::W, false); // write fd
            f.syscall(Sys::Fork as i64);
            f.ret_val_to(Val(0));
            let parent = f.label();
            f.bnez(Val(0), parent);
            // ---- child: write "Y" into the pipe, exit 5 ----
            f.addr_of_stack(Ptr(1), 48, 16);
            f.li(Val(1), 0x59); // 'Y'
            f.store(Val(1), Ptr(1), 0, Width::B);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 1);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.li(Val(0), 5);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
            // ---- parent: read 1 byte, print it, wait for child ----
            f.bind(parent);
            f.addr_of_stack(Ptr(2), 64, 16);
            f.set_arg_val(0, Val(6));
            f.set_arg_ptr(1, Ptr(2));
            f.li(Val(2), 1);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Read as i64);
            f.li(Val(3), 1);
            f.set_arg_val(0, Val(3));
            f.set_arg_ptr(1, Ptr(2));
            f.li(Val(2), 1);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.li(Val(0), 0);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Waitpid as i64);
            f.ret_val_to(Val(4)); // encoded child status
            f.shr_imm(Val(4), Val(4), 8);
            f.set_arg_val(0, Val(4));
            f.syscall(Sys::Exit as i64);
        });
        assert_eq!(
            status,
            ExitStatus::Code(5),
            "{abi}: parent exits with child's code"
        );
        assert_eq!(console, "Y", "{abi}");
    }
}

/// Signal delivery and sigreturn: handler runs, then execution resumes.
#[test]
fn signal_handler_roundtrip() {
    for abi in both_abis() {
        let mut pb = ProgramBuilder::new("sig");
        let mut exe = pb.object("sig");
        exe.add_data("msg", b"H", 16);
        let opts = opts_for(abi);
        // handler(sig): write "H"; return (through the trampoline).
        {
            let mut f = FnBuilder::begin(&mut exe, "handler", opts);
            f.load_global_ptr(Ptr(0), "msg");
            f.li(Val(0), 1);
            f.set_arg_val(0, Val(0));
            f.set_arg_ptr(1, Ptr(0));
            f.li(Val(1), 1);
            f.set_arg_val(2, Val(1));
            f.syscall(Sys::Write as i64);
            f.ret();
        }
        {
            let mut f = FnBuilder::begin(&mut exe, "main", opts);
            // sigaction(10, handler)
            f.li(Val(0), 10);
            f.set_arg_val(0, Val(0));
            f.load_global_ptr(Ptr(0), "handler");
            f.set_arg_ptr(1, Ptr(0));
            f.syscall(Sys::Sigaction as i64);
            // kill(self, 10)
            f.syscall(Sys::Getpid as i64);
            f.ret_val_to(Val(1));
            f.set_arg_val(0, Val(1));
            f.li(Val(2), 10);
            f.set_arg_val(1, Val(2));
            f.syscall(Sys::Kill as i64);
            // exit(9) after the handler ran
            f.li(Val(0), 9);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let prog = pb.finish();
        let mut k = Kernel::new(KernelConfig::default());
        let (status, console) = k.run_program(&prog, &SpawnOpts::new(abi)).unwrap();
        assert_eq!(status, ExitStatus::Code(9), "{abi}");
        assert_eq!(console, "H", "{abi}: handler observed");
    }
}

/// munmap with a malloc'd capability must fail under CheriABI: malloc
/// strips `VMMAP` exactly to prevent remapping the heap (§4).
#[test]
fn munmap_requires_vmmap_permission() {
    let body = |f: &mut FnBuilder<'_>| {
        f.li(Val(0), 4096);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(0));
        f.set_arg_ptr(0, Ptr(0));
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Munmap as i64);
        f.ret_val_to(Val(2)); // -EPROT expected under CheriABI
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Exit as i64);
    };
    let (c, _) = run(AbiMode::CheriAbi, body);
    assert_eq!(c, ExitStatus::Code(-96), "EPROT: no VMMAP permission");
}

/// mmap returns a working pointer bounded to the mapping.
#[test]
fn mmap_returns_bounded_capability() {
    for abi in both_abis() {
        let (status, _) = run(abi, |f| {
            // mmap(NULL, 8192, rw, 0)
            f.li(Val(0), 0);
            match f.opts.abi {
                cheri_isa::codegen::Abi::Mips64 => f.set_arg_val(0, Val(0)),
                cheri_isa::codegen::Abi::PureCap => {
                    // NULL hint: c3 stays NULL (never written).
                }
            }
            f.li(Val(1), 8192);
            f.set_arg_val(1, Val(1));
            f.li(Val(2), 3); // rw
            f.set_arg_val(2, Val(2));
            f.li(Val(3), 0);
            f.set_arg_val(3, Val(3));
            f.syscall(Sys::Mmap as i64);
            f.ret_ptr_to(Ptr(0));
            f.li(Val(4), 99);
            f.store(Val(4), Ptr(0), 8190, Width::B);
            f.load(Val(5), Ptr(0), 8190, Width::B, false);
            f.set_arg_val(0, Val(5));
            f.syscall(Sys::Exit as i64);
        });
        assert_eq!(status, ExitStatus::Code(99), "{abi}");
    }
}

/// kevent: a user pointer stored in kernel structures survives with its
/// tag under CheriABI and is dereferenceable after retrieval.
#[test]
fn kevent_preserves_capability_udata() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.enter(160);
        // A heap object holding 123, registered as udata.
        f.li(Val(0), 16);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(0));
        f.li(Val(1), 123);
        f.store(Val(1), Ptr(0), 0, Width::D);
        // pipe; write a byte so the read end is kevent-ready.
        f.addr_of_stack(Ptr(1), 32, 8);
        f.set_arg_ptr(0, Ptr(1));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(1), 0, Width::W, false);
        f.load(Val(7), Ptr(1), 4, Width::W, false);
        f.addr_of_stack(Ptr(2), 48, 16);
        f.li(Val(2), 1);
        f.store(Val(2), Ptr(2), 0, Width::B);
        f.set_arg_val(0, Val(7));
        f.set_arg_ptr(1, Ptr(2));
        f.set_arg_val(2, Val(2));
        f.syscall(Sys::Write as i64);
        // kevent_register(read_fd, heap_ptr)
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(0));
        f.syscall(Sys::KeventRegister as i64);
        // kevent_wait(out, 4): out at frame 64 (32B records, 16-aligned)
        f.addr_of_stack(Ptr(3), 64, 64);
        f.set_arg_ptr(0, Ptr(3));
        f.li(Val(3), 4);
        f.set_arg_val(1, Val(3));
        f.syscall(Sys::KeventWait as i64);
        // Load the returned udata capability and dereference it.
        f.load_ptr(Ptr(4), Ptr(3), 16);
        f.load(Val(4), Ptr(4), 0, Width::D, false);
        f.set_arg_val(0, Val(4));
        f.syscall(Sys::Exit as i64);
    });
    assert_eq!(
        status,
        ExitStatus::Code(123),
        "udata tag survived the kernel"
    );
}

/// Confused-deputy protection (Figure 3): a read(2) into an undersized
/// buffer faults with EFAULT under CheriABI; under the legacy ABI the
/// kernel happily overwrites adjacent stack memory.
#[test]
fn syscall_buffer_overflow_blocked_by_cheriabi() {
    let body = |f: &mut FnBuilder<'_>| {
        f.enter(160);
        // canary at frame 48, right after a 16-byte buffer at 32.
        f.addr_of_stack(Ptr(0), 32, 16);
        f.addr_of_stack(Ptr(1), 48, 8);
        f.li(Val(0), 0x7777);
        f.store(Val(0), Ptr(1), 0, Width::D);
        // pipe; stuff 64 bytes in.
        f.addr_of_stack(Ptr(2), 64, 8);
        f.set_arg_ptr(0, Ptr(2));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(2), 0, Width::W, false);
        f.load(Val(7), Ptr(2), 4, Width::W, false);
        f.addr_of_stack(Ptr(3), 80, 64);
        f.li(Val(1), 64);
        f.set_arg_val(0, Val(7));
        f.set_arg_ptr(1, Ptr(3));
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        // read(fd, 16-byte buffer, 64): the deputy attack.
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(0));
        f.li(Val(1), 64);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        f.ret_val_to(Val(2)); // bytes read or -EFAULT
                              // exit(canary == 0x7777 ? ret : -1)
        f.load(Val(3), Ptr(1), 0, Width::D, false);
        f.li(Val(4), 0x7777);
        let ok = f.label();
        f.beq(Val(3), Val(4), ok);
        f.li(Val(2), -1);
        f.bind(ok);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Exit as i64);
    };
    let (m, _) = run(AbiMode::Mips64, body);
    assert_eq!(m, ExitStatus::Code(-1), "legacy kernel smashed the canary");
    let (c, _) = run(AbiMode::CheriAbi, body);
    assert_eq!(
        c,
        ExitStatus::Code(-14),
        "CheriABI kernel faulted with EFAULT"
    );
}

/// Swap round trip under guest control: capabilities stored to the heap
/// survive eviction + rederivation and remain dereferenceable.
#[test]
fn swap_preserves_guest_capabilities() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        // p = malloc(64); q = malloc(16); *q = 321; p[0..] = q (as cap)
        f.li(Val(0), 64);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(0));
        f.li(Val(0), 16);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(1));
        f.li(Val(1), 321);
        f.store(Val(1), Ptr(1), 0, Width::D);
        f.store_ptr(Ptr(1), Ptr(0), 0);
        // Force everything out to swap.
        f.li(Val(2), 4096);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::Swapctl as i64);
        // Reload the capability from the swapped-in page; dereference.
        f.load_ptr(Ptr(2), Ptr(0), 0);
        f.load(Val(3), Ptr(2), 0, Width::D, false);
        f.set_arg_val(0, Val(3));
        f.syscall(Sys::Exit as i64);
    });
    assert_eq!(
        status,
        ExitStatus::Code(321),
        "rederivation restored the tag"
    );
}

/// sbrk is unsupported "as a matter of principle" (§4).
#[test]
fn sbrk_returns_enosys() {
    let (status, _) = run(AbiMode::CheriAbi, |f| {
        f.syscall(Sys::Sbrk as i64);
        f.ret_val_to(Val(0));
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
    });
    assert_eq!(status, ExitStatus::Code(-78), "ENOSYS");
}

/// ptrace: a debugger injects a capability into the target; the injected
/// value carries the *target's* principal and cannot exceed its authority.
#[test]
fn ptrace_injection_respects_principals() {
    // Target: loops forever (until killed).
    let target_prog = program(AbiMode::CheriAbi, |f| {
        let top = f.label();
        f.bind(top);
        f.li(Val(0), 0);
        f.jmp(top);
    });
    let mut k = Kernel::new(KernelConfig::default());
    let target = k
        .spawn(&target_prog, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    // Run a few quanta so the target is alive.
    k.run(200_000);

    // Drive ptrace from the kernel API level (a full guest debugger binary
    // adds nothing here; the syscall path is exercised in the corpus).
    let tracer_prog = program(AbiMode::CheriAbi, |f| {
        f.li(Val(0), 0);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
    });
    let tracer = k
        .spawn(&tracer_prog, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();

    // Attach.
    set_args(&mut k, tracer, &[1, target.0, 0, 0, 0, 0]);
    assert_eq!(k.sys_ptrace_public(tracer), Ok(0));
    // Inject a capability at the target's stack top region.
    let stack_probe = {
        let p = k.process(target);
        p.stack_top - 4096
    };
    set_args(
        &mut k,
        tracer,
        &[
            11,
            target.0,
            stack_probe & !15,
            stack_probe & !15,
            64,
            u64::from(Perms::user_data().bits()),
        ],
    );
    assert_eq!(k.sys_ptrace_public(tracer), Ok(0));
    let space = k.process(target).space;
    let injected =
        k.vm.load_cap(space, stack_probe & !15)
            .unwrap()
            .expect("tagged");
    assert_eq!(
        injected.provenance().principal,
        k.process(target).principal,
        "injected capability belongs to the target principal"
    );
    assert_eq!(injected.provenance().source, cheri_cap::CapSource::Debugger);

    // Excess authority is refused.
    set_args(
        &mut k,
        tracer,
        &[
            11,
            target.0,
            stack_probe & !15,
            stack_probe & !15,
            64,
            u64::from(Perms::ALL.bits()),
        ],
    );
    assert_eq!(
        k.sys_ptrace_public(tracer),
        Err(cheri_kernel::Errno::EPROT),
        "SYSTEM_REGS exceeds the target root"
    );
}

fn set_args(k: &mut Kernel, pid: Pid, args: &[u64]) {
    for (i, v) in args.iter().enumerate() {
        let r = cheri_isa::ireg::arg(i as u8);
        k.process_mut(pid).regs.w(r, *v);
    }
}

/// Global scheduler sanity: two processes interleave and both finish.
#[test]
fn scheduler_interleaves_processes() {
    let prog = program(AbiMode::CheriAbi, |f| {
        f.li(Val(0), 0);
        f.li(Val(1), 100_000);
        let top = f.label();
        f.bind(top);
        f.add_imm(Val(0), Val(0), 1);
        f.sub(Val(2), Val(0), Val(1));
        f.bnez(Val(2), top);
        f.li(Val(3), 0);
        f.set_arg_val(0, Val(3));
        f.syscall(Sys::Exit as i64);
    });
    let mut k = Kernel::new(KernelConfig::default());
    let a = k.spawn(&prog, &SpawnOpts::new(AbiMode::CheriAbi)).unwrap();
    let b = k.spawn(&prog, &SpawnOpts::new(AbiMode::CheriAbi)).unwrap();
    assert_eq!(k.run(100_000_000), RunOutcome::AllExited);
    assert_eq!(k.exit_status(a), Some(ExitStatus::Code(0)));
    assert_eq!(k.exit_status(b), Some(ExitStatus::Code(0)));
    assert!(k.stats.ctx_switches >= 4, "quantum forced interleaving");
}
