//! The fleet coordinator binary: runs a `RunSpec` list through
//! `cheriabi::fleet` — a pool of `run_specs` worker subprocesses with
//! per-unit deadlines, crash/hang recovery, poisoned-output scoring,
//! straggler re-issue, checkpoint/resume, and seeded chaos injection —
//! and prints the merged deterministic report lines, byte-identical to a
//! single-process `run_specs --shard 0/1` over the same list.
//!
//! ```text
//! table1 --dump-specs | fleet_run --specs - --workers 3 --chaos 7
//! ```
//!
//! Flags (see EXPERIMENTS.md "fleet_run"):
//!
//! * `--specs P`      spec list from file P, or stdin with `-` (required)
//! * `--workers N`    worker subprocess slots (default 4)
//! * `--unit-size N`  specs per work unit (default 8)
//! * `--deadline S`   per-unit wall deadline in seconds (default 120)
//! * `--retries N`    subprocess re-dispatch attempts per unit before
//!   degrading to in-process execution (default 2)
//! * `--case-retries N` per-case transient-retry budget (the harness
//!   `--retries` policy), forwarded to every worker and applied by the
//!   in-process fallback (default 0)
//! * `--chaos SEED`   arm the seeded coordinator fault injector
//! * `--resume`       load completed units from `target/fleet-ckpt/`
//! * `--no-ckpt`      disable checkpointing entirely
//! * `--stop-after N` stop once N units have completed and exit 3 with
//!   the checkpoints kept (the CI resume gate's interruption hook)
//! * `--in-process`   no subprocesses: run every unit on the coordinator
//!   (the fully-degraded mode, useful as a determinism reference)
//! * `--worker PATH`  use this worker binary instead of the sibling
//!   `run_specs`
//!
//! Exit status: 0 on a completed sweep, 2 on usage errors, 3 when
//! `--stop-after` interrupted the sweep (completed units checkpointed).

use cheri_bench::cli;
use cheriabi::fleet::{run_fleet, FleetOpts, WorkerCmd};
use std::time::Duration;

const USAGE: &str = "usage: fleet_run --specs <path|-> [options]\n  \
    --workers N    worker subprocess slots (default 4)\n  \
    --unit-size N  specs per work unit (default 8)\n  \
    --deadline S   per-unit wall deadline, seconds (default 120)\n  \
    --retries N    re-dispatch attempts before in-process fallback (default 2)\n  \
    --case-retries N  per-case transient-retry budget, forwarded to workers\n                 \
    as run_specs --retries and applied by the in-process\n                 \
    fallback (default 0)\n  \
    --chaos SEED   seeded coordinator fault injection (kill/garbage/delay)\n  \
    --resume       load completed units from target/fleet-ckpt/\n  \
    --no-ckpt      disable checkpointing\n  \
    --stop-after N interrupt after N completed units (exit 3, ckpts kept)\n  \
    --in-process   run every unit in-process (no worker subprocesses)\n  \
    --worker PATH  worker binary (default: the sibling run_specs)";

struct Args {
    specs: String,
    opts: FleetOpts,
    in_process: bool,
    worker_path: Option<String>,
}

fn num(iter: &mut dyn Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let value = iter.next().ok_or(format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: not a number: {value}"))
}

/// Like [`num`], but for flags holding counts/indices: a value that does
/// not fit in `usize` is a usage error, never silently clamped.
fn unum(iter: &mut dyn Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    let value = num(iter, flag)?;
    usize::try_from(value).map_err(|_| format!("{flag}: value out of range: {value}"))
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        specs: String::new(),
        opts: FleetOpts::default(),
        in_process: false,
        worker_path: None,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--specs" => {
                parsed.specs = iter.next().ok_or("--specs needs a path (or -)")?;
            }
            "--workers" => parsed.opts.workers = unum(&mut iter, "--workers")?,
            "--unit-size" => parsed.opts.unit_size = unum(&mut iter, "--unit-size")?,
            "--deadline" => {
                parsed.opts.unit_deadline = Duration::from_secs(num(&mut iter, "--deadline")?);
            }
            "--retries" => parsed.opts.retries = num(&mut iter, "--retries")?,
            "--case-retries" => {
                parsed.opts.case_retries = num(&mut iter, "--case-retries")?;
            }
            "--chaos" => parsed.opts.chaos = Some(num(&mut iter, "--chaos")?),
            "--resume" => parsed.opts.resume = true,
            "--no-ckpt" => parsed.opts.checkpoint_dir = None,
            "--stop-after" => {
                parsed.opts.stop_after = Some(unum(&mut iter, "--stop-after")?);
            }
            "--in-process" => parsed.in_process = true,
            "--worker" => {
                parsed.worker_path = Some(iter.next().ok_or("--worker needs a path")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if parsed.specs.is_empty() {
        return Err(format!("--specs is required\n{USAGE}"));
    }
    if parsed.opts.workers == 0 || parsed.opts.unit_size == 0 {
        return Err("--workers and --unit-size must be at least 1".to_string());
    }
    Ok(parsed)
}

fn main() {
    let args = match parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let list = match cli::read_specs(&args.specs) {
        Ok(list) => list,
        Err(msg) => {
            eprintln!("fleet_run: {msg}");
            std::process::exit(2);
        }
    };
    if list.rejected > 0 {
        eprintln!(
            "fleet_run: specs_rejected={} specs_accepted={}",
            list.rejected,
            list.specs.len()
        );
    }
    let mut opts = args.opts;
    opts.worker = if args.in_process {
        None
    } else if let Some(path) = args.worker_path {
        Some(WorkerCmd::run_specs(path))
    } else {
        let sibling = cli::sibling_worker();
        if sibling.is_none() {
            eprintln!("fleet_run: no sibling run_specs binary; running in-process");
        }
        sibling
    };
    let out = run_fleet(&cheri_bench::registry(), &list.specs, &opts);
    eprintln!("{}", out.stats.summary_line());
    if out.interrupted {
        eprintln!("fleet_run: interrupted by --stop-after; checkpoints kept for --resume");
        std::process::exit(3);
    }
    for line in &out.lines {
        println!("{line}");
    }
}
