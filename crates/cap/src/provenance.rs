//! Abstract-capability provenance metadata (paper §3).
//!
//! The paper's *abstract capability* pairs access rights with a conceptual
//! **principal ID**, freshly created for the kernel and for each process
//! address space. Architectural capabilities carry no such field — it exists
//! only in the reasoning model — but a simulator can afford to attach it and
//! *check* the model: a capability must never be usable under a principal it
//! was not derived for, even when the architectural derivation chain is
//! broken and re-established (swap, debugger injection).
//!
//! The [`CapSource`] tag records which runtime mechanism derived the
//! capability; it drives the Figure 5 reconstruction ("cumulative number of
//! capabilities against size of bounds, for different sources").

use std::fmt;

/// Identity of an abstract principal: the kernel or one process
/// address space. Unique over the entire execution, never reused
/// (paper §3: "Principal IDs are freshly created ... unique over the entire
/// execution").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(u64);

impl PrincipalId {
    /// The kernel's principal.
    pub const KERNEL: PrincipalId = PrincipalId(0);

    /// Constructs a principal from a raw id; id 0 is the kernel.
    #[must_use]
    pub fn from_raw(raw: u64) -> PrincipalId {
        PrincipalId(raw)
    }

    /// The raw id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the kernel principal.
    #[must_use]
    pub fn is_kernel(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_kernel() {
            write!(f, "Principal(kernel)")
        } else {
            write!(f, "Principal({})", self.0)
        }
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Which mechanism of §3 created or refined this capability.
///
/// The variants correspond to the construction rules enumerated in the paper
/// ("CPU reset", "Process address-space creation", "Automatic references",
/// "Dynamic linking", "Memory allocation", "System calls", ...), and to the
/// legend of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CapSource {
    /// Maximally permissive capability provided at machine reset.
    Boot,
    /// Kernel-internal capability (kernel code/data/direct map).
    Kernel,
    /// Installed by `execve` into the new process (text/data/stack/args
    /// mappings, ELF aux vector entries).
    Exec,
    /// Derived from the stack capability (automatic references).
    Stack,
    /// Returned by the userspace allocator.
    Malloc,
    /// Created by the run-time linker for a global or function symbol
    /// (capability GOT entries).
    GlobReloc,
    /// Returned to userspace by a system call (`mmap`, `shmat`, ...).
    Syscall,
    /// Thread-local-storage block capability.
    Tls,
    /// Signal-frame / trampoline capabilities materialised during signal
    /// delivery.
    Signal,
    /// Injected by a debugger via `ptrace` (rederived from the target's
    /// root, per §3 "Debugging").
    Debugger,
}

impl CapSource {
    /// Stable label used in Figure 5 output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CapSource::Boot => "boot",
            CapSource::Kernel => "kern",
            CapSource::Exec => "exec",
            CapSource::Stack => "stack",
            CapSource::Malloc => "malloc",
            CapSource::GlobReloc => "glob relocs",
            CapSource::Syscall => "syscall",
            CapSource::Tls => "tls",
            CapSource::Signal => "signal",
            CapSource::Debugger => "debugger",
        }
    }
}

impl fmt::Display for CapSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Non-architectural provenance metadata attached to every capability.
///
/// Derivation preserves the principal; only the trusted runtime rebinds the
/// source tag (e.g. malloc deriving from an `mmap` capability retags its
/// result [`CapSource::Malloc`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// The abstract principal this capability belongs to.
    pub principal: PrincipalId,
    /// The mechanism that created/refined it.
    pub source: CapSource,
}

impl Provenance {
    /// Provenance for a fresh root.
    #[must_use]
    pub fn new(principal: PrincipalId, source: CapSource) -> Provenance {
        Provenance { principal, source }
    }
}

/// Allocator of fresh principal IDs, used by the kernel at boot and on every
/// `execve` that replaces an address space.
#[derive(Debug)]
pub struct PrincipalAllocator {
    next: u64,
}

impl PrincipalAllocator {
    /// A new allocator; id 0 (the kernel) is pre-reserved.
    #[must_use]
    pub fn new() -> PrincipalAllocator {
        PrincipalAllocator { next: 1 }
    }

    /// Returns a principal ID never returned before.
    pub fn fresh(&mut self) -> PrincipalId {
        let id = PrincipalId(self.next);
        self.next += 1;
        id
    }
}

impl Default for PrincipalAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_zero() {
        assert!(PrincipalId::KERNEL.is_kernel());
        assert!(!PrincipalId::from_raw(7).is_kernel());
    }

    #[test]
    fn allocator_never_reuses() {
        let mut a = PrincipalAllocator::new();
        let p1 = a.fresh();
        let p2 = a.fresh();
        assert_ne!(p1, p2);
        assert!(!p1.is_kernel());
    }

    #[test]
    fn labels_match_figure_5_legend() {
        assert_eq!(CapSource::GlobReloc.label(), "glob relocs");
        assert_eq!(CapSource::Kernel.label(), "kern");
    }
}
