//! The abstract-capability invariant checker (DESIGN.md I4).
//!
//! §3: "We must ensure not just that the capability used for an access is
//! legitimate and appropriately minimal, but also that the whole set of
//! capabilities available to the code is appropriately minimal ... each
//! principal's abstract capability has a disjoint root."
//!
//! [`check_process`] walks everything a process can reach — its register
//! file and every tagged granule of its resident private memory — and
//! verifies that each capability's (non-architectural) principal tag equals
//! the process's principal. Swap, COW, fork, signal delivery and debugger
//! injection must all preserve this; a violation means a capability leaked
//! across principals.

use cheri_cap::{CapSource, Capability, Perms, PrincipalId};
use cheri_kernel::{Kernel, Pid};
use cheri_vm::{Backing, PageState};
use std::collections::BTreeMap;
use std::fmt;

/// One cross-principal capability found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Where it was found ("reg c7", "mem 0x7ff0_1230").
    pub location: String,
    /// The principal recorded on the capability.
    pub found: PrincipalId,
    /// The process's principal.
    pub expected: PrincipalId,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capability at {} belongs to {} but process is {}",
            self.location, self.found, self.expected
        )
    }
}

/// The result of scanning one process.
#[derive(Clone, Debug, Default)]
pub struct AbstractReport {
    /// Tagged capabilities inspected.
    pub caps_checked: u64,
    /// Cross-principal capabilities found (must be empty).
    pub violations: Vec<Violation>,
    /// Tagged capabilities in *shared* mappings, reported separately
    /// (deliberate sharing is outside the per-principal invariant).
    pub shared_skipped: u64,
    /// Count of checked capabilities by derivation source.
    pub by_source: BTreeMap<CapSource, u64>,
    /// Capabilities that (unexpectedly) carry kernel-only permissions.
    pub overprivileged: u64,
}

impl AbstractReport {
    /// True when no invariant violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.overprivileged == 0
    }
}

/// Scans the register file and resident private memory of `pid`.
///
/// # Panics
///
/// Panics on unknown pids (kernel-internal identifiers).
#[must_use]
pub fn check_process(kernel: &Kernel, pid: Pid) -> AbstractReport {
    let proc = kernel.process(pid);
    let expected = proc.principal;
    let mut report = AbstractReport::default();

    let check = |report: &mut AbstractReport, cap: &Capability, loc: String| {
        if !cap.tag() {
            return;
        }
        report.caps_checked += 1;
        *report.by_source.entry(cap.provenance().source).or_insert(0) += 1;
        if cap.provenance().principal != expected {
            report.violations.push(Violation {
                location: loc,
                found: cap.provenance().principal,
                expected,
            });
        }
        if cap.perms().contains(Perms::SYSTEM_REGS) || cap.perms().contains(Perms::KERNEL_DIRECT) {
            report.overprivileged += 1;
        }
    };

    // Registers.
    for i in 0..32u8 {
        let c = proc.regs.c(cheri_isa::CReg(i));
        check(&mut report, &c, format!("reg c{i}"));
    }
    check(&mut report, &proc.regs.pcc, "pcc".to_string());
    check(&mut report, &proc.regs.ddc, "ddc".to_string());

    // Resident memory.
    let space = kernel.vm.space(proc.space);
    for (&vpn, state) in &space.pages {
        let PageState::Resident { frame, .. } = state else {
            continue;
        };
        let va = vpn * cheri_mem::FRAME_SIZE;
        let shared = matches!(
            space.mapping_at(va).map(|m| &m.backing),
            Some(Backing::Shared { .. })
        );
        let caps = kernel.vm.phys.scan_caps(*frame).expect("resident frame");
        for (off, cap) in caps {
            if shared {
                report.shared_skipped += 1;
                continue;
            }
            check(&mut report, &cap, format!("mem {:#x}", va + off));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuestOps;
    use crate::{AbiMode, ExitStatus, SpawnOpts, System};
    use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
    use cheri_isa::Width;
    use cheri_rtld::ProgramBuilder;

    /// A busy CheriABI process (allocations, stack refs, stored pointers,
    /// a swap round trip) never exposes a cross-principal capability.
    #[test]
    fn busy_process_is_principal_clean() {
        let mut pb = ProgramBuilder::new("busy");
        let mut exe = pb.object("busy");
        exe.add_data("glob", &[0u8; 32], 16);
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
            f.enter(160);
            f.malloc_imm(Ptr(0), 256);
            f.malloc_imm(Ptr(1), 64);
            f.store_ptr(Ptr(1), Ptr(0), 0);
            f.addr_of_stack(Ptr(2), 32, 64);
            f.store_ptr(Ptr(0), Ptr(2), 0);
            f.load_global_ptr(Ptr(3), "glob");
            f.li(Val(0), 1);
            f.store(Val(0), Ptr(3), 0, Width::D);
            // Swap everything out and back.
            f.li(Val(1), 4096);
            f.set_arg_val(0, Val(1));
            f.syscall(crate::Sys::Swapctl as i64);
            f.load_ptr(Ptr(4), Ptr(0), 0);
            f.load(Val(2), Ptr(4), 0, Width::D, false);
            // Loop forever so we can inspect the live process.
            let spin = f.label();
            f.bind(spin);
            f.jmp(spin);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();

        let mut sys = System::new();
        let pid = sys
            .kernel
            .spawn(&program, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        sys.kernel.run(2_000_000); // runs to the spin loop
        assert!(sys.kernel.exit_status(pid).is_none(), "still spinning");
        let report = check_process(&sys.kernel, pid);
        assert!(report.caps_checked > 10, "registers + memory scanned");
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.by_source.contains_key(&CapSource::Malloc));
        assert!(report.by_source.contains_key(&CapSource::Exec));
    }

    /// Two independent processes have disjoint principals, and a capability
    /// smuggled between them (simulating a kernel bug) is detected.
    #[test]
    fn cross_principal_leak_is_detected() {
        let build = || {
            let mut pb = ProgramBuilder::new("p");
            let mut exe = pb.object("p");
            {
                let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
                f.malloc_imm(Ptr(0), 64);
                let spin = f.label();
                f.bind(spin);
                f.jmp(spin);
            }
            exe.set_entry("main");
            pb.add(exe.finish());
            pb.finish()
        };
        let mut sys = System::new();
        let a = sys
            .kernel
            .spawn(&build(), &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        let b = sys
            .kernel
            .spawn(&build(), &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        sys.kernel.run(2_000_000);
        assert_ne!(
            sys.kernel.process(a).principal,
            sys.kernel.process(b).principal,
            "fresh principal per execve"
        );
        // Simulate a kernel bug: copy a register capability from A into B.
        let leaked = sys.kernel.process(a).regs.c(cheri_isa::creg::ptr(0));
        assert!(leaked.tag());
        sys.kernel
            .process_mut(b)
            .regs
            .wc(cheri_isa::creg::ptr(5), leaked);
        let report = check_process(&sys.kernel, b);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].found, sys.kernel.process(a).principal);
    }

    /// The checker tolerates exited processes' absence gracefully by
    /// running against a live one only (sanity).
    #[test]
    fn exited_process_scan_is_empty() {
        let mut pb = ProgramBuilder::new("e");
        let mut exe = pb.object("e");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
            f.sys_exit_imm(0);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut sys = System::new();
        let (status, _) = sys
            .kernel
            .run_program(&program, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        assert_eq!(status, ExitStatus::Code(0));
    }
}
