//! Property-based tests for the capability algebra (invariants I1 and I2 of
//! DESIGN.md): compression covers requests minimally and monotonically, and
//! no sequence of derivation operations ever widens authority.

use cheri_cap::compress::{
    is_exactly_representable, representable_alignment_mask, representable_length,
    representable_window, round_bounds, ADDRESS_SPACE_TOP,
};
use cheri_cap::{CapFault, CapFormat, CapSource, Capability, Perms, PrincipalId};
use proptest::prelude::*;

fn user_root(fmt: CapFormat) -> Capability {
    Capability::root(fmt, PrincipalId::from_raw(1), CapSource::Exec)
}

proptest! {
    /// I1: decoded bounds always cover the request and stay in-space.
    #[test]
    fn rounding_covers_request(base in any::<u64>(), len in any::<u64>()) {
        prop_assume!((base as u128) + (len as u128) <= ADDRESS_SPACE_TOP);
        let (b, t, e) = round_bounds(base, len);
        prop_assert!(b <= base);
        prop_assert!(t >= base as u128 + len as u128);
        prop_assert!(t <= ADDRESS_SPACE_TOP);
        if e > 0 {
            prop_assert_eq!(b % (1u64 << e.min(63)), 0);
        }
    }

    /// I1: CRRL is minimal-or-equal, monotone, and idempotent; CRAM-aligned
    /// bases of CRRL-rounded lengths are exactly representable.
    #[test]
    fn crrl_cram_contract(len in 1u64..=u64::MAX / 2, base_seed in any::<u64>()) {
        let l = representable_length(len);
        prop_assert!(l >= len);
        prop_assert_eq!(representable_length(l), l);
        let mask = representable_alignment_mask(len);
        let base = base_seed & mask & (u64::MAX / 4); // keep base+len in space
        prop_assert!(is_exactly_representable(base, l),
            "len={} l={} base={:#x} mask={:#x}", len, l, base, mask);
    }

    /// I2: set_bounds never yields bounds outside the parent.
    #[test]
    fn set_bounds_is_monotonic(
        pbase in 0u64..=(1 << 40),
        plen in 1u64..=(1 << 30),
        off in any::<u64>(),
        clen in any::<u64>(),
        exact in any::<bool>(),
    ) {
        let parent = match user_root(CapFormat::C128).with_addr(pbase).set_bounds(plen, false) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let child_addr = parent.base().wrapping_add(off % (parent.length().max(1) * 2));
        let child = parent.with_addr(child_addr);
        if !child.tag() { return Ok(()); }
        match child.set_bounds(clen % (plen * 2 + 1), exact) {
            Ok(c) => {
                prop_assert!(c.base() >= parent.base());
                prop_assert!(c.top() <= parent.top());
                prop_assert!(c.perms().is_subset_of(parent.perms()));
            }
            Err(f) => {
                prop_assert!(matches!(
                    f,
                    CapFault::LengthViolation | CapFault::RepresentabilityViolation
                ));
            }
        }
    }

    /// I2: arbitrary interleavings of derivations never widen authority.
    #[test]
    fn derivation_chains_never_widen(ops in proptest::collection::vec(0u8..4, 1..32),
                                     seeds in proptest::collection::vec(any::<u64>(), 32)) {
        let root = user_root(CapFormat::C128);
        let start = root.with_addr(0x10_0000).set_bounds(1 << 20, false).unwrap();
        let mut cur = start;
        for (i, op) in ops.iter().enumerate() {
            let s = seeds[i % seeds.len()];
            let next = match op {
                0 => cur.inc_addr(s as i64 % (1 << 22)),
                1 => match cur.with_addr(cur.base().wrapping_add(s % (1 << 20)))
                         .set_bounds(s % (1 << 16), false) {
                        Ok(c) => c,
                        Err(_) => cur,
                     },
                2 => cur.and_perms(Perms::from_bits_truncate(s as u32)),
                _ => cur.clear_tag(),
            };
            if next.tag() {
                prop_assert!(next.base() >= start.base());
                prop_assert!(next.top() <= start.top());
                prop_assert!(next.perms().is_subset_of(start.perms()));
                prop_assert_eq!(next.provenance().principal, start.provenance().principal);
            } else {
                // Untagged values must never regain a tag via derivation.
                prop_assert!(!next.inc_addr(1).tag());
                prop_assert!(!next.and_perms(Perms::ALL).tag());
                prop_assert!(next.set_bounds(1, false).is_err());
            }
            cur = next;
        }
    }

    /// The representable window always contains the bounds, and C256 never
    /// de-tags on address moves.
    #[test]
    fn window_and_format_semantics(base in 0u64..(1 << 40), len in 1u64..(1 << 30), mv in any::<i64>()) {
        let (b, t, e) = round_bounds(base, len);
        let (lo, hi) = representable_window(b, t, e);
        prop_assert!(lo <= b && hi >= t);

        let c256 = user_root(CapFormat::C256).with_addr(base).set_bounds(len, true).unwrap();
        prop_assert!(c256.inc_addr(mv).tag());
    }

    /// check_access agrees with bounds arithmetic exactly.
    #[test]
    fn access_check_matches_bounds(base in 0u64..(1 << 40), len in 1u64..(1 << 20),
                                   at in any::<u64>(), size in 1u64..64) {
        let c = user_root(CapFormat::C128).with_addr(base).set_bounds(len, false).unwrap();
        let ok = c.check_access(at, size, Perms::LOAD).is_ok();
        let expect = (at as u128) >= c.base() as u128
            && (at as u128 + size as u128) <= c.top();
        prop_assert_eq!(ok, expect);
    }
}
