//! Root facade crate: hosts the repository's runnable examples and
//! cross-crate integration tests. The library surface is re-exported from
//! [`cheriabi`]; see that crate (and README.md) for the actual API.

pub use cheriabi::*;
