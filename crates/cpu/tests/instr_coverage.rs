//! Instruction-level coverage for the capability inspection/manipulation
//! instructions not exercised by the main interpreter tests.

use cheri_cap::{CapFault, CapFormat, CapSource, Capability, Perms, PrincipalId};
use cheri_cpu::{Cpu, Exit, RegFile, TrapCause};
use cheri_isa::{creg, ireg, Instr, Width};
use cheri_vm::{AsId, Backing, Prot, Vm};
use std::sync::Arc;

fn machine(code: Vec<Instr>) -> (Cpu, Vm, AsId, RegFile) {
    let mut vm = Vm::new(64);
    let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
    let bytes: Vec<u8> = (0..code.len() as u32).flat_map(u32::to_le_bytes).collect();
    vm.map(
        id,
        Some(0x10000),
        (code.len() as u64 * 4).max(4096),
        Prot::rx(),
        Backing::Image {
            data: Arc::new(bytes),
            offset: 0,
        },
        "text",
    )
    .unwrap();
    vm.map(id, Some(0x20000), 4096, Prot::rw(), Backing::Zero, "data")
        .unwrap();
    let mut cpu = Cpu::new();
    cpu.register_code(id, 0x10000, Arc::new(code));
    let mut rf = RegFile::new(CapFormat::C128);
    let root = vm.space(id).root;
    rf.pcc = root
        .with_addr(0x10000)
        .set_bounds(0x1000, false)
        .unwrap()
        .and_perms(Perms::user_code());
    rf.pc = 0x10000;
    rf.ddc = Capability::null(CapFormat::C128);
    rf.wc(
        creg::ptr(0),
        root.with_addr(0x20000).set_bounds(256, true).unwrap(),
    );
    (cpu, vm, id, rf)
}

fn run(code: Vec<Instr>) -> (Exit, RegFile) {
    let (mut cpu, mut vm, id, mut rf) = machine(code);
    let exit = cpu.run(&mut vm, id, &mut rf, 1000);
    (exit, rf)
}

#[test]
fn cgetters_report_fields() {
    let (exit, rf) = run(vec![
        Instr::CGetAddr {
            rd: ireg::T0,
            cb: creg::ptr(0),
        },
        Instr::CGetBase {
            rd: ireg::T1,
            cb: creg::ptr(0),
        },
        Instr::CGetLen {
            rd: ireg::T2,
            cb: creg::ptr(0),
        },
        Instr::CGetTag {
            rd: ireg::T3,
            cb: creg::ptr(0),
        },
        Instr::CGetOffset {
            rd: ireg::temp(4),
            cb: creg::ptr(0),
        },
        Instr::CGetType {
            rd: ireg::temp(5),
            cb: creg::ptr(0),
        },
        Instr::CGetPerm {
            rd: ireg::temp(6),
            cb: creg::ptr(0),
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T0), 0x20000);
    assert_eq!(rf.r(ireg::T1), 0x20000);
    assert_eq!(rf.r(ireg::T2), 256);
    assert_eq!(rf.r(ireg::T3), 1);
    assert_eq!(rf.r(ireg::temp(4)), 0);
    assert_eq!(rf.r(ireg::temp(5)), u64::MAX, "unsealed reports -1");
    assert!(Perms::from_bits_truncate(rf.r(ireg::temp(6)) as u32).contains(Perms::LOAD));
}

#[test]
fn csub_and_ctestsubset() {
    let (exit, rf) = run(vec![
        Instr::CIncOffsetImm {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            imm: 48,
        },
        Instr::CSub {
            rd: ireg::T0,
            cb: creg::ptr(1),
            ct: creg::ptr(0),
        },
        // narrow child is a subset of parent
        Instr::Li {
            rd: ireg::T1,
            imm: 16,
        },
        Instr::CSetBounds {
            cd: creg::ptr(2),
            cb: creg::ptr(1),
            rs: ireg::T1,
        },
        Instr::CTestSubset {
            rd: ireg::T2,
            cb: creg::ptr(0),
            ct: creg::ptr(2),
        },
        Instr::CTestSubset {
            rd: ireg::T3,
            cb: creg::ptr(2),
            ct: creg::ptr(0),
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T0), 48, "pointer difference");
    assert_eq!(rf.r(ireg::T2), 1, "child within parent");
    assert_eq!(rf.r(ireg::T3), 0, "parent not within child");
}

#[test]
fn cfromptr_ctoptr_roundtrip_and_null() {
    let (exit, rf) = run(vec![
        Instr::CGetAddr {
            rd: ireg::T0,
            cb: creg::ptr(0),
        },
        Instr::AddI {
            rd: ireg::T0,
            rs: ireg::T0,
            imm: 64,
        },
        Instr::CFromPtr {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            rs: ireg::T0,
        },
        Instr::CGetTag {
            rd: ireg::T1,
            cb: creg::ptr(1),
        },
        Instr::CToPtr {
            rd: ireg::T2,
            cb: creg::ptr(1),
            ct: creg::ptr(0),
        },
        // rs == 0 yields NULL
        Instr::CFromPtr {
            cd: creg::ptr(2),
            cb: creg::ptr(0),
            rs: ireg::ZERO,
        },
        Instr::CGetTag {
            rd: ireg::T3,
            cb: creg::ptr(2),
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T1), 1, "provenance from ptr(0)");
    assert_eq!(rf.r(ireg::T2), 0x20000 + 64);
    assert_eq!(rf.r(ireg::T3), 0, "NULL from integer zero");
}

#[test]
fn crrl_cram_instructions() {
    let (exit, rf) = run(vec![
        Instr::Li {
            rd: ireg::T0,
            imm: (1 << 20) + 1,
        },
        Instr::CRrl {
            rd: ireg::T1,
            rs: ireg::T0,
        },
        Instr::CRam {
            rd: ireg::T2,
            rs: ireg::T0,
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    let len = rf.r(ireg::T1);
    let mask = rf.r(ireg::T2);
    assert!(len > (1 << 20));
    assert_eq!(
        len,
        cheri_cap::compress::representable_length((1 << 20) + 1)
    );
    assert_eq!(
        mask,
        cheri_cap::compress::representable_alignment_mask((1 << 20) + 1)
    );
}

#[test]
fn seal_unseal_instructions() {
    let (exit, rf) = run(vec![
        // sealer = ptr(0) with addr 42 and SEAL|UNSEAL perms (root had ALL
        // minus kernel bits; ptr(0) was narrowed to user_data... give it
        // the needed perms via CAndPerm on a fresh root-ish: use ptr(0)).
        Instr::Li {
            rd: ireg::T0,
            imm: 0x20000 + 42,
        },
        Instr::CSetAddr {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            rs: ireg::T0,
        },
        Instr::CSeal {
            cd: creg::ptr(2),
            cs: creg::ptr(0),
            ct: creg::ptr(1),
        },
        Instr::CGetType {
            rd: ireg::T1,
            cb: creg::ptr(2),
        },
        Instr::CUnseal {
            cd: creg::ptr(3),
            cs: creg::ptr(2),
            ct: creg::ptr(1),
        },
        Instr::CGetType {
            rd: ireg::T2,
            cb: creg::ptr(3),
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T1), 0x20000 + 42, "sealed with the otype");
    assert_eq!(rf.r(ireg::T2), u64::MAX, "unsealed again");
}

#[test]
fn sealed_cap_loads_trap() {
    let (exit, _) = run(vec![
        Instr::Li {
            rd: ireg::T0,
            imm: 0x20000 + 42,
        },
        Instr::CSetAddr {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            rs: ireg::T0,
        },
        Instr::CSeal {
            cd: creg::ptr(2),
            cs: creg::ptr(0),
            ct: creg::ptr(1),
        },
        Instr::CLoad {
            rd: ireg::T1,
            cb: creg::ptr(2),
            off: 0,
            w: Width::D,
            signed: false,
        },
    ]);
    match exit {
        Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::SealViolation)),
        e => panic!("expected seal trap: {e:?}"),
    }
}

#[test]
fn loading_cap_without_loadcap_perm_strips_tag() {
    let (exit, rf) = run(vec![
        // store ptr(0) at 0x20000 (it points there)
        Instr::Csc {
            cs: creg::ptr(0),
            cb: creg::ptr(0),
            off: 0,
        },
        // make a LOAD-only view (no LOAD_CAP)
        Instr::Li {
            rd: ireg::T0,
            imm: i64::from(Perms::LOAD.bits() | Perms::GLOBAL.bits()),
        },
        Instr::CAndPerm {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            rs: ireg::T0,
        },
        Instr::Clc {
            cd: creg::ptr(2),
            cb: creg::ptr(1),
            off: 0,
        },
        Instr::CGetTag {
            rd: ireg::T1,
            cb: creg::ptr(2),
        },
        // through the full-perm pointer the tag survives
        Instr::Clc {
            cd: creg::ptr(3),
            cb: creg::ptr(0),
            off: 0,
        },
        Instr::CGetTag {
            rd: ireg::T2,
            cb: creg::ptr(3),
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T1), 0, "no LOAD_CAP: tag stripped");
    assert_eq!(rf.r(ireg::T2), 1, "with LOAD_CAP: tag kept");
}

#[test]
fn storing_local_cap_requires_permission() {
    let (exit, _) = run(vec![
        // make a non-GLOBAL (local) capability
        Instr::Li {
            rd: ireg::T0,
            imm: i64::from((Perms::ALL - Perms::GLOBAL).bits()),
        },
        Instr::CAndPerm {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            rs: ireg::T0,
        },
        // make a target pointer without STORE_LOCAL_CAP
        Instr::Li {
            rd: ireg::T1,
            imm: i64::from((Perms::ALL - Perms::STORE_LOCAL_CAP).bits()),
        },
        Instr::CAndPerm {
            cd: creg::ptr(2),
            cb: creg::ptr(0),
            rs: ireg::T1,
        },
        Instr::Csc {
            cs: creg::ptr(1),
            cb: creg::ptr(2),
            off: 0,
        },
    ]);
    match exit {
        Exit::Trap(t) => {
            assert_eq!(
                t.cause,
                TrapCause::Cap(CapFault::PermitStoreLocalCapViolation)
            );
        }
        e => panic!("expected store-local trap: {e:?}"),
    }
}

#[test]
fn cgetpcc_is_bounded_to_code() {
    let (exit, rf) = run(vec![Instr::CGetPcc { cd: creg::ptr(1) }, Instr::Syscall]);
    assert_eq!(exit, Exit::Syscall);
    let pcc = rf.c(creg::ptr(1));
    assert!(pcc.tag());
    assert_eq!(pcc.base(), 0x10000);
    assert!(pcc.perms().contains(Perms::EXECUTE));
    assert!(!pcc.perms().contains(Perms::STORE));
}

#[test]
fn movz_style_flow_with_slt() {
    // max(a, b) via slt + branches; exercises Slt/Sltu/SltI paths.
    let (exit, rf) = run(vec![
        Instr::Li {
            rd: ireg::A0,
            imm: 17,
        },
        Instr::Li {
            rd: ireg::A1,
            imm: 42,
        },
        Instr::Slt {
            rd: ireg::T0,
            rs: ireg::A0,
            rt: ireg::A1,
        },
        Instr::SltI {
            rd: ireg::T1,
            rs: ireg::A0,
            imm: -1,
        },
        Instr::SltuI {
            rd: ireg::T2,
            rs: ireg::A0,
            imm: 18,
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T0), 1);
    assert_eq!(rf.r(ireg::T1), 0);
    assert_eq!(rf.r(ireg::T2), 1);
}

#[test]
fn div_by_zero_is_defined_as_zero() {
    let (exit, rf) = run(vec![
        Instr::Li {
            rd: ireg::A0,
            imm: 5,
        },
        Instr::DivU {
            rd: ireg::T0,
            rs: ireg::A0,
            rt: ireg::ZERO,
        },
        Instr::DivS {
            rd: ireg::T1,
            rs: ireg::A0,
            rt: ireg::ZERO,
        },
        Instr::RemU {
            rd: ireg::T2,
            rs: ireg::A0,
            rt: ireg::ZERO,
        },
        Instr::Syscall,
    ]);
    assert_eq!(exit, Exit::Syscall);
    assert_eq!(rf.r(ireg::T0), 0);
    assert_eq!(rf.r(ireg::T1), 0);
    assert_eq!(rf.r(ireg::T2), 0);
}

#[test]
fn legacy_unaligned_access_costs_fixup_cycles() {
    // Legacy (DDC) unaligned loads are fixed up at a cycle cost; aligned
    // loads are not.
    let aligned = vec![
        Instr::Li {
            rd: ireg::T0,
            imm: 0x20000,
        },
        Instr::Load {
            rd: ireg::T1,
            base: ireg::T0,
            off: 0,
            w: Width::D,
            signed: false,
        },
        Instr::Syscall,
    ];
    let unaligned = vec![
        Instr::Li {
            rd: ireg::T0,
            imm: 0x20001,
        },
        Instr::Load {
            rd: ireg::T1,
            base: ireg::T0,
            off: 0,
            w: Width::D,
            signed: false,
        },
        Instr::Syscall,
    ];
    let cycles = |code: Vec<Instr>| {
        let (mut cpu, mut vm, id, mut rf) = machine(code);
        let root = vm.space(id).root;
        rf.ddc = root.with_source(CapSource::Exec); // legacy process
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        cpu.stats.cycles
    };
    let a = cycles(aligned);
    let u = cycles(unaligned);
    assert!(u >= a + 50, "fixup cost visible: {a} vs {u}");
}
