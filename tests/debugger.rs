//! A guest-level debugging session: a *guest* tracer process drives the
//! `ptrace` syscall against a separately exec'd target — two principals, as
//! in §3 "Debugging" — and the host-side debug utilities inspect the same
//! stopped target.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheriabi::debug::{dump_cap_registers, symbolize, unwind_stack};
use cheriabi::guest::GuestOps;
use cheriabi::{AbiMode, ExitStatus, ProgramBuilder, SpawnOpts, Sys, System};

fn program(name: &str, body: impl FnOnce(&mut FnBuilder<'_>)) -> cheriabi::Program {
    let mut pb = ProgramBuilder::new(name);
    let mut exe = pb.object(name);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

#[test]
fn guest_tracer_debugs_guest_target() {
    let mut sys = System::new();

    // Target: writes a known value to a global, then spins.
    let target_prog = program("target", |f| {
        f.enter(64);
        f.malloc_imm(Ptr(0), 32);
        f.li(Val(0), 0xfeed);
        f.store(Val(0), Ptr(0), 0, Width::D);
        // Publish the heap address in a register the tracer can read.
        f.ptr_to_int(Val(7), Ptr(0));
        let spin = f.label();
        f.bind(spin);
        f.jmp(spin);
    });
    let target = sys
        .kernel
        .spawn(&target_prog, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    sys.kernel.run(300_000); // let the target reach its spin loop
    assert!(sys.kernel.exit_status(target).is_none());
    let heap_addr = sys.kernel.process(target).regs.r(cheri_isa::ireg::temp(7));
    assert!(heap_addr > 0);

    // Tracer (a guest program): attach, read the target's $t7 register,
    // peek the heap word it points to, poke it, detach, and exit with a
    // checksum proving every step worked.
    let tpid = target.0 as i64;
    let tracer_prog = program("tracer", |f| {
        // attach(target)
        f.li(Val(0), 1);
        f.set_arg_val(0, Val(0));
        f.li(Val(1), tpid);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Ptrace as i64);
        f.ret_val_to(Val(6)); // 0
                              // getreg(target, t7=19) -> heap address
        f.li(Val(0), 5);
        f.set_arg_val(0, Val(0));
        f.li(Val(1), tpid);
        f.set_arg_val(1, Val(1));
        f.li(Val(2), 19); // IReg(19) = t7
        f.set_arg_val(2, Val(2));
        f.syscall(Sys::Ptrace as i64);
        f.ret_val_to(Val(5)); // heap addr
                              // peek(target, heap) -> 0xfeed
        f.li(Val(0), 3);
        f.set_arg_val(0, Val(0));
        f.li(Val(1), tpid);
        f.set_arg_val(1, Val(1));
        f.set_arg_val(2, Val(5));
        f.syscall(Sys::Ptrace as i64);
        f.ret_val_to(Val(4));
        // poke(target, heap, 0xbead)
        f.li(Val(0), 4);
        f.set_arg_val(0, Val(0));
        f.li(Val(1), tpid);
        f.set_arg_val(1, Val(1));
        f.set_arg_val(2, Val(5));
        f.li(Val(2), 0xbead);
        f.set_arg_val(3, Val(2));
        f.syscall(Sys::Ptrace as i64);
        // detach
        f.li(Val(0), 2);
        f.set_arg_val(0, Val(0));
        f.li(Val(1), tpid);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Ptrace as i64);
        // exit(peeked value)
        f.set_arg_val(0, Val(4));
        f.syscall(Sys::Exit as i64);
    });
    let tracer = sys
        .kernel
        .spawn(&tracer_prog, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    sys.kernel.run(2_000_000);
    assert_eq!(
        sys.kernel.exit_status(tracer),
        Some(ExitStatus::Code(0xfeed)),
        "tracer read the target's heap through ptrace"
    );
    // The poke really landed in the target (tags in that granule cleared,
    // data visible).
    let space = sys.kernel.process(target).space;
    assert_eq!(sys.kernel.vm.read_u64(space, heap_addr).unwrap(), 0xbead);

    // Host-side debugger utilities agree about the stopped target.
    let pc = sys.kernel.process(target).regs.pc;
    let loc = symbolize(&sys.kernel, target, pc).expect("pc in text");
    assert_eq!(loc.object, "target");
    let dump = dump_cap_registers(&sys.kernel, target);
    assert!(dump.contains("pcc ="));
    let frames = unwind_stack(&sys.kernel, target);
    assert!(!frames.is_empty());
}
