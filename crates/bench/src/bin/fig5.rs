//! Regenerates **Figure 5**: the cumulative number of capabilities created
//! during a `tlsish` (openssl-`s_server` stand-in) run, against the size of
//! their bounds, per capability source (§5.5's trace-based reconstruction
//! of the process's abstract capability).

use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, SpawnOpts};
use cheri_workloads::tlsish;
use cheriabi::System;

fn main() {
    let program = tlsish::build(CodegenOpts::purecap(), 200);
    let mut sys = System::new();
    sys.enable_tracing();
    let (status, _console, metrics) = sys
        .measure(&program, &SpawnOpts::new(AbiMode::CheriAbi))
        .expect("tlsish loads");
    let cdf = sys.capability_histogram();
    println!(
        "Figure 5: cumulative capabilities by bounds size (tlsish, {} sessions, exit {status:?})",
        200
    );
    println!(
        "run: {} instructions, {} syscalls, {} derivation events",
        metrics.instructions,
        metrics.syscalls,
        cdf.total()
    );
    println!();
    println!("{cdf}");
    println!(
        "fraction of capabilities with bounds <= 1 KiB: {:.1}%",
        cdf.fraction_at_most(10) * 100.0
    );
    println!(
        "fraction of capabilities with bounds <= 16 MiB: {:.1}%",
        cdf.fraction_at_most(24) * 100.0
    );
    println!();
    println!(
        "Paper (Figure 5) shape: no capability grants access to more than\n\
         16 MiB; around 90% grant access to less than 1 KiB; stack and\n\
         malloc capabilities are tightly bounded; kern and syscall series\n\
         are tiny; the baseline legacy process would be a vertical line at\n\
         the maximum user address."
    );
}
