//! Runs the minidb `initdb` macro-workload (the paper's PostgreSQL
//! stand-in, §5.2) under all four build configurations and prints the
//! relative cost — a miniature of the `initdb_macro` benchmark.
//!
//! ```sh
//! cargo run --release --example database
//! ```

use cheri_corpus::minidb::{build_initdb, initdb_expected_exit};
use cheri_isa::codegen::CodegenOpts;
use cheriabi::{AbiMode, ExitStatus, SpawnOpts, System};

fn main() {
    let records = 300;
    println!("minidb initdb with {records} records");
    println!(
        "{:<20} {:>12} {:>12} {:>10}",
        "config", "cycles", "instrs", "vs mips64"
    );
    let mut base = 0.0f64;
    for (name, opts, abi, asan) in [
        ("mips64", CodegenOpts::mips64(), AbiMode::Mips64, false),
        ("cheriabi", CodegenOpts::purecap(), AbiMode::CheriAbi, false),
        (
            "cheriabi-smallclc",
            CodegenOpts::purecap_small_clc(),
            AbiMode::CheriAbi,
            false,
        ),
        (
            "mips64-asan",
            CodegenOpts::mips64_asan(),
            AbiMode::Mips64,
            true,
        ),
    ] {
        let program = build_initdb(opts, records);
        let mut sys = System::new();
        let mut sopts = SpawnOpts::new(abi);
        sopts.asan = asan;
        let (status, _console, m) = sys.measure(&program, &sopts).expect("loads");
        assert_eq!(
            status,
            ExitStatus::Code(initdb_expected_exit(records)),
            "{name}: wrong database checksum"
        );
        if base == 0.0 {
            base = m.cycles as f64;
        }
        println!(
            "{:<20} {:>12} {:>12} {:>9.2}x",
            name,
            m.cycles,
            m.instructions,
            m.cycles as f64 / base
        );
    }
    println!();
    println!("the catalog files were written through the simulated VFS and");
    println!("the index was sorted through capability-preserving pointer moves.");
}
