//! Host-side debugging support (paper §4 "Debugging", §6 "Debugging").
//!
//! The paper extends `ptrace` and GDB with limited capability support:
//! reading capability registers, dereferencing capability pointers, and
//! unwinding stacks — while noting that existing debuggers "encode a flat,
//! integer address space model". This module is the simulator's equivalent
//! of that GDB work: symbolisation of guest addresses against the loaded
//! objects, capability-register pretty-printing, and a scan of a stopped
//! process's stack for saved return capabilities (a best-effort unwind).

use cheri_kernel::{Kernel, Pid};
use cheri_vm::PageState;
use std::fmt::Write as _;

/// A resolved guest code location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Location {
    /// Object (library/executable) name.
    pub object: String,
    /// Byte offset of the address within the object's text.
    pub offset: u64,
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{:#x}", self.object, self.offset)
    }
}

/// Resolves a guest code address to the loaded object containing it.
#[must_use]
pub fn symbolize(kernel: &Kernel, pid: Pid, addr: u64) -> Option<Location> {
    let p = kernel.process(pid);
    p.loaded
        .objects
        .iter()
        .find(|o| addr >= o.text_base && addr < o.text_base + o.text_len)
        .map(|o| Location {
            object: o.name.clone(),
            offset: addr - o.text_base,
        })
}

/// Pretty-prints a stopped process's capability registers — the equivalent
/// of the paper's GDB extension "to permit reading the values of capability
/// registers".
#[must_use]
pub fn dump_cap_registers(kernel: &Kernel, pid: Pid) -> String {
    let p = kernel.process(pid);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pc  = {:#x} ({})",
        p.regs.pc,
        symbolize(kernel, pid, p.regs.pc).map_or_else(|| "?".into(), |l| l.to_string())
    );
    let _ = writeln!(out, "pcc = {:?}", p.regs.pcc);
    let _ = writeln!(out, "ddc = {:?}", p.regs.ddc);
    for i in 1..32u8 {
        let c = p.regs.c(cheri_isa::CReg(i));
        if c.tag() {
            let _ = writeln!(out, "c{i:<2} = {c:?}");
        }
    }
    out
}

/// Best-effort stack unwind: scans the resident stack pages of a stopped
/// process for tagged, executable capabilities (saved `$cra` values) and
/// symbolises them, innermost first.
#[must_use]
pub fn unwind_stack(kernel: &Kernel, pid: Pid) -> Vec<Location> {
    let p = kernel.process(pid);
    let space = kernel.vm.space(p.space);
    let stack_base = p.stack_top - p.stack_size;
    let mut frames: Vec<(u64, Location)> = Vec::new();
    for (&vpn, st) in &space.pages {
        let va = vpn * cheri_mem::FRAME_SIZE;
        if va < stack_base || va >= p.stack_top {
            continue;
        }
        let PageState::Resident { frame, .. } = st else {
            continue;
        };
        for (off, cap) in kernel.vm.phys.scan_caps(*frame).expect("resident") {
            if cap.tag() && cap.perms().contains(crate::Perms::EXECUTE) {
                if let Some(loc) = symbolize(kernel, pid, cap.addr()) {
                    frames.push((va + off, loc));
                }
            }
        }
    }
    // Innermost (lowest address = most recent frame) first.
    frames.sort_by_key(|(va, _)| *va);
    let mut out: Vec<Location> = Vec::new();
    if let Some(pc_loc) = symbolize(kernel, pid, p.regs.pc) {
        out.push(pc_loc);
    }
    out.extend(frames.into_iter().map(|(_, l)| l));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuestOps;
    use crate::{AbiMode, ProgramBuilder, SpawnOpts, System};
    use cheri_isa::codegen::{CodegenOpts, FnBuilder, Val};

    /// Build a two-object program where main calls into a library function
    /// that spins; stop it there and inspect.
    fn spinning_system() -> (System, Pid) {
        let mut pb = ProgramBuilder::new("dbg");
        let mut lib = pb.object("libdbg");
        {
            let mut f = FnBuilder::begin(&mut lib, "spin_here", CodegenOpts::purecap());
            f.enter(32);
            let l = f.label();
            f.bind(l);
            f.jmp(l);
        }
        pb.add(lib.finish());
        let mut exe = pb.object("dbg");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
            f.enter(64);
            f.call_global("spin_here");
            f.sys_exit_imm(0);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut sys = System::new();
        let pid = sys
            .kernel
            .spawn(&program, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        sys.kernel.run(300_000);
        assert!(sys.kernel.exit_status(pid).is_none(), "still spinning");
        (sys, pid)
    }

    #[test]
    fn symbolize_resolves_pc_to_library() {
        let (sys, pid) = spinning_system();
        let pc = sys.kernel.process(pid).regs.pc;
        let loc = symbolize(&sys.kernel, pid, pc).expect("in text");
        assert_eq!(loc.object, "libdbg", "spinning inside the library");
    }

    #[test]
    fn register_dump_shows_tagged_caps() {
        let (sys, pid) = spinning_system();
        let dump = dump_cap_registers(&sys.kernel, pid);
        assert!(dump.contains("pcc ="));
        assert!(dump.contains("libdbg+"), "pc symbolised: {dump}");
        assert!(dump.contains("c11"), "stack capability visible");
    }

    #[test]
    fn unwind_finds_the_caller() {
        let (sys, pid) = spinning_system();
        let frames = unwind_stack(&sys.kernel, pid);
        assert!(!frames.is_empty());
        assert_eq!(frames[0].object, "libdbg", "innermost frame");
        assert!(
            frames.iter().any(|l| l.object == "dbg"),
            "main's saved return capability found: {frames:?}"
        );
    }

    #[test]
    fn symbolize_rejects_non_text() {
        let (sys, pid) = spinning_system();
        assert_eq!(symbolize(&sys.kernel, pid, 0xdead_0000_0000), None);
        let _ = Val(0);
    }
}
