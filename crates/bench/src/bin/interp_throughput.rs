//! Host-side interpreter throughput: guest-MIPS across the five execution
//! modes — the reference interpreter (the `--oracle` shadow semantics),
//! the single-step baseline (`--exec-mode single`), the TLB fast path
//! with superblocks disabled, the superblock machine (`--exec-mode
//! superblock`), and the template tier on top (`--exec-mode template`,
//! the default everywhere else). The ref row prices the oracle:
//! `ref_overhead` is fast MIPS over reference MIPS, an upper bound on the
//! slowdown of `--oracle replay`.
//!
//! Unlike every other binary here, this one measures *host* wall time, so
//! its numbers vary run to run and machine to machine. Guest-visible
//! metrics must NOT vary: the binary re-measures each program in every
//! mode and exits non-zero if any counter differs, making every
//! invocation a determinism check for the TLB/epoch fast path, the
//! superblock execution core and the template tier. `--weaken-flush`
//! deliberately drops one template exit flush so CI can prove that check
//! has teeth (the run must exit non-zero).
//!
//! Writes `BENCH_interp.json` (see EXPERIMENTS.md).

use std::time::Instant;

use cheri_bench::cli::json_f64;
use cheri_corpus::families::freebsd_suite;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig, SpawnOpts};
use cheriabi::spec::{ProgramSpec, Registry};
use cheriabi::{Metrics, System};

const USAGE: &str = "usage: interp_throughput [options]
  --no-fast-path    measure only the slow-path baseline
  --weaken-flush    test-only: drop one template exit flush; the metric
                    cross-check must then fail (exit non-zero)
  --trials <n>      wall-time trials per mode (default 3, best-of)
  --spin-iters <n>  spin loop iterations (default 2000000)
  --out <path>      output JSON path (default BENCH_interp.json)
  -h, --help        this help";

struct Opts {
    fast_too: bool,
    weaken_flush: bool,
    trials: u32,
    spin_iters: i64,
    out: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        fast_too: true,
        weaken_flush: false,
        trials: 3,
        spin_iters: 2_000_000,
        out: "BENCH_interp.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-fast-path" => opts.fast_too = false,
            "--weaken-flush" => opts.weaken_flush = true,
            "--trials" => {
                opts.trials = args
                    .next()
                    .ok_or("--trials needs a value")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--spin-iters" => {
                opts.spin_iters = args
                    .next()
                    .ok_or("--spin-iters needs a value")?
                    .parse()
                    .map_err(|e| format!("--spin-iters: {e}"))?;
            }
            "--out" => opts.out = args.next().ok_or("--out needs a value")?,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.trials == 0 {
        return Err("--trials must be at least 1".to_string());
    }
    Ok(opts)
}

/// An interpreter execution mode: the fetch/translate fast path and,
/// on top of it, the superblock execution core.
#[derive(Clone, Copy)]
struct Mode {
    fast: bool,
    superblocks: bool,
    templates: bool,
    reference: bool,
}

impl Mode {
    /// The reference interpreter: pure per-step semantics, no TLB, no
    /// decoded regions — the machine the differential oracle shadows with.
    const REF: Mode = Mode {
        fast: false,
        superblocks: false,
        templates: false,
        reference: true,
    };
    /// Single-step baseline (fast machine, fast path off).
    const BASE: Mode = Mode {
        fast: false,
        superblocks: false,
        templates: false,
        reference: false,
    };
    /// TLB/epoch fast path only (PR 3's fast mode).
    const TLB: Mode = Mode {
        fast: true,
        superblocks: false,
        templates: false,
        reference: false,
    };
    /// The superblock machine with the template tier held off
    /// (`--exec-mode superblock`).
    const FULL: Mode = Mode {
        fast: true,
        superblocks: true,
        templates: false,
        reference: false,
    };
    /// The template tier on top of the superblock machine
    /// (`--exec-mode template`, the default everywhere else).
    const TMPL: Mode = Mode {
        fast: true,
        superblocks: true,
        templates: true,
        reference: false,
    };
}

/// One timed execution. Returns guest metrics and host wall seconds.
fn run_once(registry: &Registry, spec: &ProgramSpec, mode: Mode, weaken: bool) -> (Metrics, f64) {
    let program = registry.lower(spec, CodegenOpts::purecap(), 0);
    let mut sys = System::with_config(KernelConfig::default());
    sys.kernel.cpu.set_fast_path(mode.fast);
    sys.kernel.cpu.set_superblocks(mode.superblocks);
    sys.kernel.cpu.set_templates(mode.templates);
    sys.kernel.cpu.set_reference(mode.reference);
    if weaken && mode.templates {
        sys.kernel.cpu.set_weaken_flush(true);
    }
    let opts = SpawnOpts::new(AbiMode::CheriAbi);
    let start = Instant::now();
    let (_, _, metrics) = sys.measure(&program, &opts).expect("program loads");
    (metrics, start.elapsed().as_secs_f64())
}

/// Best-of-`trials` wall time for one (program, mode) pair; asserts the
/// guest metrics are identical across trials.
fn run_mode(
    registry: &Registry,
    spec: &ProgramSpec,
    mode: Mode,
    trials: u32,
    weaken: bool,
) -> (Metrics, f64) {
    let (metrics, mut best) = run_once(registry, spec, mode, weaken);
    for _ in 1..trials {
        let (m, wall) = run_once(registry, spec, mode, weaken);
        assert_eq!(m, metrics, "guest metrics must be identical across trials");
        best = best.min(wall);
    }
    (metrics, best)
}

fn mips(instructions: u64, wall: f64) -> f64 {
    instructions as f64 / wall / 1e6
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("interp_throughput: {e}");
            std::process::exit(2);
        }
    };
    let registry = cheri_bench::registry();
    let corpus_case = freebsd_suite()
        .first()
        .map(|c| c.name.clone())
        .expect("non-empty corpus");
    let programs: Vec<(String, ProgramSpec)> = vec![
        (
            "spin".to_string(),
            ProgramSpec::Spin {
                iters: opts.spin_iters,
            },
        ),
        (
            "workload:auto-qsort".to_string(),
            ProgramSpec::Workload {
                name: "auto-qsort".to_string(),
            },
        ),
        (
            format!("corpus:{corpus_case}"),
            ProgramSpec::Corpus { case: corpus_case },
        ),
    ];
    let mut lines = Vec::new();
    let mut spin_speedup: Option<f64> = None;
    let mut spin_tmpl_speedup: Option<f64> = None;
    let mut mismatch = false;
    println!(
        "{:<28} {:>12} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8} {:>9}",
        "program",
        "guest instrs",
        "ref MIPS",
        "base MIPS",
        "tlb MIPS",
        "sb MIPS",
        "tmpl MIPS",
        "speedup",
        "tmpl gain"
    );
    for (name, spec) in &programs {
        let (base_metrics, base_wall) = run_mode(&registry, spec, Mode::BASE, opts.trials, false);
        let base_mips = mips(base_metrics.instructions, base_wall);
        let (ref_metrics, ref_wall) = run_mode(&registry, spec, Mode::REF, opts.trials, false);
        if ref_metrics != base_metrics {
            eprintln!(
                "interp_throughput: {name}: guest metrics diverge between the \
                 reference interpreter and baseline: {ref_metrics:?} vs {base_metrics:?}"
            );
            mismatch = true;
        }
        let ref_mips = mips(ref_metrics.instructions, ref_wall);
        let (tlb_stats, fast_stats, tmpl_stats, speedup, sb_speedup, tmpl_speedup) = if opts
            .fast_too
        {
            let (tlb_metrics, tlb_wall) = run_mode(&registry, spec, Mode::TLB, opts.trials, false);
            let (fast_metrics, fast_wall) =
                run_mode(&registry, spec, Mode::FULL, opts.trials, false);
            let (tmpl_metrics, tmpl_wall) =
                run_mode(&registry, spec, Mode::TMPL, opts.trials, opts.weaken_flush);
            for (mode, m) in [
                ("tlb fast path", &tlb_metrics),
                ("superblock", &fast_metrics),
                ("template", &tmpl_metrics),
            ] {
                if m != &base_metrics {
                    eprintln!(
                        "interp_throughput: {name}: guest metrics diverge between \
                         {mode} and baseline: {m:?} vs {base_metrics:?}"
                    );
                    mismatch = true;
                }
            }
            let tlb_mips = mips(tlb_metrics.instructions, tlb_wall);
            let fast_mips = mips(fast_metrics.instructions, fast_wall);
            let tmpl_mips = mips(tmpl_metrics.instructions, tmpl_wall);
            let speedup = tmpl_mips / base_mips;
            let sb = fast_mips / tlb_mips;
            let tmpl = tmpl_mips / fast_mips;
            if name == "spin" {
                spin_speedup = Some(speedup);
                spin_tmpl_speedup = Some(tmpl);
            }
            (
                Some((tlb_wall, tlb_mips)),
                Some((fast_wall, fast_mips)),
                Some((tmpl_wall, tmpl_mips)),
                Some(speedup),
                Some(sb),
                Some(tmpl),
            )
        } else {
            (None, None, None, None, None, None)
        };
        let (tlb_wall_j, tlb_mips_j) = match tlb_stats {
            Some((w, m)) => (json_f64(w * 1e3), json_f64(m)),
            None => ("null".to_string(), "null".to_string()),
        };
        let (fast_wall_j, fast_mips_j, speedup_j) = match (fast_stats, speedup) {
            (Some((w, m)), Some(s)) => (json_f64(w * 1e3), json_f64(m), json_f64(s)),
            _ => ("null".to_string(), "null".to_string(), "null".to_string()),
        };
        let (tmpl_wall_j, tmpl_mips_j) = match tmpl_stats {
            Some((w, m)) => (json_f64(w * 1e3), json_f64(m)),
            None => ("null".to_string(), "null".to_string()),
        };
        let ref_overhead = tmpl_stats.map(|(_, tmpl_mips)| tmpl_mips / ref_mips);
        println!(
            "{:<28} {:>12} {:>11.2} {:>11.2} {:>11} {:>11} {:>11} {:>8} {:>9}",
            name,
            base_metrics.instructions,
            ref_mips,
            base_mips,
            tlb_stats.map_or("-".to_string(), |(_, m)| format!("{m:.2}")),
            fast_stats.map_or("-".to_string(), |(_, m)| format!("{m:.2}")),
            tmpl_stats.map_or("-".to_string(), |(_, m)| format!("{m:.2}")),
            speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
            tmpl_speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
        );
        lines.push(format!(
            "{{\"program\":\"{}\",\"instructions\":{},\"cycles\":{},\"wall_ms_ref\":{},\"mips_ref\":{},\"wall_ms_base\":{},\"mips_base\":{},\"wall_ms_tlb\":{},\"mips_tlb\":{},\"wall_ms_fast\":{},\"mips_fast\":{},\"wall_ms_tmpl\":{},\"mips_tmpl\":{},\"speedup\":{},\"sb_speedup\":{},\"tmpl_speedup\":{},\"ref_overhead\":{}}}",
            cheri_bench::cli::json_escape(name),
            base_metrics.instructions,
            base_metrics.cycles,
            json_f64(ref_wall * 1e3),
            json_f64(ref_mips),
            json_f64(base_wall * 1e3),
            json_f64(base_mips),
            tlb_wall_j,
            tlb_mips_j,
            fast_wall_j,
            fast_mips_j,
            tmpl_wall_j,
            tmpl_mips_j,
            speedup_j,
            sb_speedup.map_or("null".to_string(), json_f64),
            tmpl_speedup.map_or("null".to_string(), json_f64),
            ref_overhead.map_or("null".to_string(), json_f64),
        ));
    }
    let doc = format!(
        "{{\"bench\":\"interp_throughput\",\"trials\":{},\"spin_speedup\":{},\"spin_tmpl_speedup\":{},\"results\":[{}]}}\n",
        opts.trials,
        spin_speedup.map_or("null".to_string(), json_f64),
        spin_tmpl_speedup.map_or("null".to_string(), json_f64),
        lines.join(",")
    );
    if let Err(e) = std::fs::write(&opts.out, &doc) {
        eprintln!("interp_throughput: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("wrote {}", opts.out);
    if mismatch {
        std::process::exit(1);
    }
}
