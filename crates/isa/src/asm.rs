//! A small two-pass assembler: emit instructions with symbolic labels, then
//! resolve branch targets.

use crate::{IReg, Instr};
use std::fmt;

/// A forward-referenceable code location.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Instruction-stream builder with label fixups.
///
/// ```
/// use cheri_isa::{Assembler, Instr, ireg};
///
/// let mut a = Assembler::new();
/// let done = a.label();
/// a.emit(Instr::Li { rd: ireg::V0, imm: 1 });
/// a.beq(ireg::V0, ireg::ZERO, done); // forward reference
/// a.emit(Instr::Li { rd: ireg::V0, imm: 2 });
/// a.bind(done);
/// let code = a.finish();
/// assert_eq!(code.len(), 3);
/// match code[1] {
///     Instr::Beq { target, .. } => assert_eq!(target, 3),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Default)]
pub struct Assembler {
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl fmt::Debug for Assembler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Assembler{{{} instrs, {} labels, {} pending fixups}}",
            self.code.len(),
            self.labels.len(),
            self.fixups.len()
        )
    }
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current position (index of the next instruction).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Appends an instruction, returning its index.
    pub fn emit(&mut self, i: Instr) -> u32 {
        self.code.push(i);
        self.code.len() as u32 - 1
    }

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(here);
    }

    fn emit_branch(&mut self, i: Instr, label: Label) {
        let at = self.code.len();
        self.code.push(i);
        self.fixups.push((at, label));
    }

    /// Emits `beq rs, rt, label`.
    pub fn beq(&mut self, rs: IReg, rt: IReg, label: Label) {
        self.emit_branch(Instr::Beq { rs, rt, target: 0 }, label);
    }

    /// Emits `bne rs, rt, label`.
    pub fn bne(&mut self, rs: IReg, rt: IReg, label: Label) {
        self.emit_branch(Instr::Bne { rs, rt, target: 0 }, label);
    }

    /// Emits `blez rs, label`.
    pub fn blez(&mut self, rs: IReg, label: Label) {
        self.emit_branch(Instr::Blez { rs, target: 0 }, label);
    }

    /// Emits `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: IReg, label: Label) {
        self.emit_branch(Instr::Bgtz { rs, target: 0 }, label);
    }

    /// Emits `bltz rs, label`.
    pub fn bltz(&mut self, rs: IReg, label: Label) {
        self.emit_branch(Instr::Bltz { rs, target: 0 }, label);
    }

    /// Emits `bgez rs, label`.
    pub fn bgez(&mut self, rs: IReg, label: Label) {
        self.emit_branch(Instr::Bgez { rs, target: 0 }, label);
    }

    /// Emits an unconditional jump to `label`.
    pub fn j(&mut self, label: Label) {
        self.emit_branch(Instr::J { target: 0 }, label);
    }

    /// Emits an intra-object call to `label`.
    pub fn jal(&mut self, label: Label) {
        self.emit_branch(Instr::Jal { target: 0 }, label);
    }

    /// Resolves all fixups and returns the instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn finish(mut self) -> Vec<Instr> {
        for (at, label) in self.fixups {
            let t = self.labels[label.0].unwrap_or_else(|| panic!("unbound label {label:?}"));
            match &mut self.code[at] {
                Instr::Beq { target, .. }
                | Instr::Bne { target, .. }
                | Instr::Blez { target, .. }
                | Instr::Bgtz { target, .. }
                | Instr::Bltz { target, .. }
                | Instr::Bgez { target, .. }
                | Instr::J { target }
                | Instr::Jal { target } => *target = t,
                other => panic!("fixup on non-branch {other:?}"),
            }
        }
        self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ireg;

    #[test]
    fn backward_branch_resolves() {
        let mut a = Assembler::new();
        let top = a.label();
        a.bind(top);
        a.emit(Instr::Nop);
        a.bne(ireg::V0, ireg::ZERO, top);
        let code = a.finish();
        match code[1] {
            Instr::Bne { target, .. } => assert_eq!(target, 0),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.label();
        a.j(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
