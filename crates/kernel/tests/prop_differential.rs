//! Differential ABI testing: property-generated guest programs performing
//! random *in-bounds* memory and arithmetic work must produce byte-for-byte
//! identical results under the legacy mips64 ABI and CheriABI — the paper's
//! central compatibility claim ("the vast majority of code can simply be
//! recompiled"), checked mechanically.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, SpawnOpts, Sys};
use cheri_rtld::{Program, ProgramBuilder};
use proptest::prelude::*;

/// One step of generated guest work. All addresses are kept in-bounds by
/// construction (sizes are masked into the buffer).
#[derive(Clone, Debug)]
enum Step {
    /// acc = acc op imm
    Arith(u8, i32),
    /// buf[off] = acc (u64, off masked+aligned)
    Store(u16),
    /// acc ^= buf[off]
    Load(u16),
    /// ptrs[slot] = &buf[off]; later loads go through it
    MakePtr(u8, u16),
    /// acc += *(ptrs[slot])  (byte)
    DerefPtr(u8),
    /// swap all pages out
    Swap,
    /// malloc a fresh 64-byte buffer and switch to it
    NewBuf,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, any::<i32>()).prop_map(|(k, v)| Step::Arith(k, v)),
        (any::<u16>()).prop_map(Step::Store),
        (any::<u16>()).prop_map(Step::Load),
        (0u8..3, any::<u16>()).prop_map(|(s, o)| Step::MakePtr(s, o)),
        (0u8..3).prop_map(Step::DerefPtr),
        Just(Step::Swap),
        Just(Step::NewBuf),
    ]
}

/// Compiles the generated step list for one ABI.
fn build(steps: &[Step], opts: CodegenOpts) -> Program {
    let mut pb = ProgramBuilder::new("diff");
    let mut exe = pb.object("diff");
    {
        let f = &mut FnBuilder::begin(&mut exe, "main", opts);
        // Ptr(0) = current 64-byte buffer; Ptr(1..=3) = made pointers
        // (initialised to the buffer so DerefPtr is always valid);
        // Val(0) = acc.
        let ps = f.ptr_size() as i64;
        let _ = ps;
        f.li(Val(5), 64);
        f.set_arg_val(0, Val(5));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(0));
        for s in 1..=3u8 {
            f.ptr_mv(Ptr(s), Ptr(0));
        }
        f.li(Val(0), 1);
        for step in steps {
            match step {
                Step::Arith(k, v) => {
                    let imm = i64::from(*v);
                    match k % 4 {
                        0 => f.add_imm(Val(0), Val(0), imm),
                        1 => {
                            f.li(Val(1), imm | 1);
                            f.mul(Val(0), Val(0), Val(1));
                        }
                        2 => f.and_imm(Val(0), Val(0), imm as u64 | 0xff),
                        _ => {
                            f.li(Val(1), imm);
                            f.xor(Val(0), Val(0), Val(1));
                        }
                    }
                }
                Step::Store(off) => {
                    let o = i64::from(off % 8) * 8;
                    f.store(Val(0), Ptr(0), o, Width::D);
                }
                Step::Load(off) => {
                    let o = i64::from(off % 8) * 8;
                    f.load(Val(1), Ptr(0), o, Width::D, false);
                    f.xor(Val(0), Val(0), Val(1));
                }
                Step::MakePtr(slot, off) => {
                    let s = 1 + (slot % 3);
                    let o = i64::from(off % 64);
                    f.ptr_add_imm(Ptr(s), Ptr(0), o);
                }
                Step::DerefPtr(slot) => {
                    let s = 1 + (slot % 3);
                    f.load(Val(1), Ptr(s), 0, Width::B, false);
                    f.add(Val(0), Val(0), Val(1));
                }
                Step::Swap => {
                    // Preserve acc across the syscall clobbering of v0.
                    f.li(Val(4), 4096);
                    f.set_arg_val(0, Val(4));
                    f.syscall(Sys::Swapctl as i64);
                }
                Step::NewBuf => {
                    f.li(Val(5), 64);
                    f.set_arg_val(0, Val(5));
                    f.syscall(Sys::RtMalloc as i64);
                    f.ret_ptr_to(Ptr(0));
                    for s in 1..=3u8 {
                        f.ptr_mv(Ptr(s), Ptr(0));
                    }
                }
            }
        }
        f.and_imm(Val(0), Val(0), 0xff);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

fn run(steps: &[Step], opts: CodegenOpts, abi: AbiMode) -> ExitStatus {
    let program = build(steps, opts);
    let mut k = Kernel::new(KernelConfig::default());
    let mut sopts = SpawnOpts::new(abi);
    sopts.instr_budget = Some(20_000_000);
    k.run_program(&program, &sopts).expect("loads").0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same generated in-bounds program exits with the same code under
    /// all three compilation modes (mips64, CheriABI, CheriABI + sub-object
    /// bounds — the latter because these programs never take interior
    /// references beyond field size 64... i.e. whole-buffer pointers).
    #[test]
    fn generated_programs_are_abi_invariant(steps in proptest::collection::vec(step_strategy(), 1..48)) {
        let m = run(&steps, CodegenOpts::mips64(), AbiMode::Mips64);
        prop_assert!(matches!(m, ExitStatus::Code(_)), "mips64: {m:?}");
        let c = run(&steps, CodegenOpts::purecap(), AbiMode::CheriAbi);
        prop_assert_eq!(m, c, "cheriabi diverged");
        let c2 = run(&steps, CodegenOpts::purecap_small_clc(), AbiMode::CheriAbi);
        prop_assert_eq!(m, c2, "small-clc cheriabi diverged");
    }

    /// Under CheriABI, the same program with every pointer *detagged*
    /// before use (simulating integer laundering) either matches the
    /// original or tag-faults — it never silently computes a different
    /// answer through a forged pointer.
    #[test]
    fn derefs_after_detag_never_silently_diverge(steps in proptest::collection::vec(step_strategy(), 1..24)) {
        // Run the baseline.
        let baseline = run(&steps, CodegenOpts::purecap(), AbiMode::CheriAbi);
        prop_assert!(matches!(baseline, ExitStatus::Code(_)));
        // Replay with a detag injected before the first deref.
        let mut mutated = steps.clone();
        if let Some(pos) = mutated.iter().position(|s| matches!(s, Step::DerefPtr(_))) {
            mutated.insert(pos, Step::MakePtr(0, 0)); // benign: keeps shape
        }
        let replay = run(&mutated, CodegenOpts::purecap(), AbiMode::CheriAbi);
        prop_assert!(matches!(replay, ExitStatus::Code(_) | ExitStatus::Fault(_)));
    }
}
