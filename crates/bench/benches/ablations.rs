//! Criterion benches for the DESIGN.md ablations. The *primary* number is
//! guest cycles per iteration — fully deterministic, via the vendored
//! stub's custom-measurement API reading the harness's per-thread guest
//! clock — with host wall time printed as a secondary. These benches track
//! the *relative* cost of the design choices and keep the whole pipeline
//! exercised under `cargo bench`.
//!
//! Every bench goes through the declarative [`RunSpec`] path — the same
//! spec the table/figure binaries would hash and cache — so the ablations
//! measure exactly what the experiments run.

use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig};
use cheriabi::harness::{execute_spec, guest_cycles_consumed, RunSpec};
use cheriabi::spec::ProgramSpec;
use criterion::{criterion_group, criterion_main, Criterion, Measurement};

/// Guest cycles retired by the cases a bench iteration executes, read from
/// the harness's per-thread deterministic clock. Identical on every run of
/// an unchanged workload, unlike wall time.
struct GuestCycles;

impl Measurement for GuestCycles {
    type Intermediate = u64;
    type Value = u64;

    fn start(&self) -> u64 {
        guest_cycles_consumed()
    }

    fn end(&self, i: u64) -> u64 {
        guest_cycles_consumed().wrapping_sub(i)
    }

    fn add(&self, v1: &u64, v2: &u64) -> u64 {
        v1.wrapping_add(*v2)
    }

    fn zero(&self) -> u64 {
        0
    }

    fn to_f64(&self, value: &u64) -> f64 {
        *value as f64
    }

    fn unit(&self) -> &'static str {
        "guest-cycles"
    }
}

/// D2 ablation: CLC immediate reach (plus the mips64 baseline and the asan
/// software baseline) on the initdb macro-benchmark.
fn bench_initdb_configs(c: &mut Criterion<GuestCycles>) {
    let registry = cheri_bench::registry();
    let mut g = c.benchmark_group("initdb");
    g.sample_size(10);
    for (name, opts, abi, asan) in [
        ("mips64", CodegenOpts::mips64(), AbiMode::Mips64, false),
        ("cheriabi", CodegenOpts::purecap(), AbiMode::CheriAbi, false),
        (
            "cheriabi-smallclc",
            CodegenOpts::purecap_small_clc(),
            AbiMode::CheriAbi,
            false,
        ),
        (
            "mips64-asan",
            CodegenOpts::mips64_asan(),
            AbiMode::Mips64,
            true,
        ),
    ] {
        let spec = RunSpec::new(
            format!("ablation-initdb-{name}"),
            ProgramSpec::Initdb { records: 120 },
            opts,
            abi,
        )
        .with_budget(2_000_000_000)
        .with_asan(asan);
        g.bench_function(name, |b| {
            b.iter(|| execute_spec(&registry, &spec));
        });
    }
    g.finish();
}

/// D1 ablation: 128-bit compressed vs 256-bit exact capabilities on a
/// pointer-heavy workload (the wider format doubles pointer footprint
/// again).
fn bench_cap_format(c: &mut Criterion<GuestCycles>) {
    let registry = cheri_bench::registry();
    let mut g = c.benchmark_group("capfmt-xalancbmk");
    g.sample_size(10);
    for (name, opts, fmt) in [
        ("c128", CodegenOpts::purecap(), cheriabi::CapFormat::C128),
        (
            "c256",
            CodegenOpts::purecap_c256(),
            cheriabi::CapFormat::C256,
        ),
    ] {
        let spec = RunSpec::new(
            format!("ablation-capfmt-{name}"),
            ProgramSpec::Workload {
                name: "spec2006-xalancbmk".to_string(),
            },
            opts,
            AbiMode::CheriAbi,
        )
        .with_seed(7)
        .with_budget(2_000_000_000)
        .with_config(KernelConfig {
            cap_fmt: fmt,
            ..KernelConfig::default()
        });
        g.bench_function(name, |b| {
            b.iter(|| execute_spec(&registry, &spec));
        });
    }
    g.finish();
}

/// Table 3 sampling: one representative BOdiagsuite case under all three
/// detector configurations.
fn bench_bodiag_detectors(c: &mut Criterion<GuestCycles>) {
    use bodiagsuite::{case_spec, AccessDir, CaseCfg, Config, Idiom, Region, Variant};
    let registry = cheri_bench::registry();
    let cfg = CaseCfg {
        id: 0,
        region: Region::Heap,
        access: AccessDir::Write,
        idiom: Idiom::LoopInduction,
        len: 64,
    };
    let mut g = c.benchmark_group("bodiag-detectors");
    g.sample_size(10);
    for config in Config::ALL {
        let spec = case_spec(&cfg, Variant::Min, config);
        g.bench_function(config.label(), |b| {
            b.iter(|| execute_spec(&registry, &spec));
        });
    }
    g.finish();
}

/// Execution-tier ablation: the same spin workload under the template
/// tier, the superblock machine and the single-step reference
/// interpreter. Guest cycles per iteration must be *identical* across
/// the three rows — the equivalence contract, visible right in the
/// bench output — while the wall-time secondary shows the host-speed
/// gap.
fn bench_superblock_modes(c: &mut Criterion<GuestCycles>) {
    use cheriabi::harness::ExecMode;
    let registry = cheri_bench::registry();
    let mut g = c.benchmark_group("superblock-spin");
    g.sample_size(10);
    for (name, mode) in [
        ("template", ExecMode::Template),
        ("superblock", ExecMode::Superblock),
        ("single-step", ExecMode::SingleStep),
    ] {
        let spec = RunSpec::new(
            format!("ablation-superblock-{name}"),
            ProgramSpec::Spin { iters: 200_000 },
            CodegenOpts::mips64(),
            AbiMode::Mips64,
        )
        .with_budget(2_000_000_000)
        .with_exec_mode(mode);
        g.bench_function(name, |b| {
            b.iter(|| execute_spec(&registry, &spec));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().with_measurement(GuestCycles);
    targets = bench_initdb_configs,
    bench_cap_format,
    bench_bodiag_detectors,
    bench_superblock_modes
);
criterion_main!(benches);
