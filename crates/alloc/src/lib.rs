//! # cheri-alloc — the userspace allocator (jemalloc stand-in)
//!
//! CheriBSD's `malloc` is "a lightly modified version of JEMalloc" (§4):
//! it returns capabilities **bounded to the requested allocation**, with the
//! `VMMAP` permission stripped (so heap pointers cannot be used to remap the
//! memory under the allocator) and never executable. This crate reproduces
//! that capability flow over the simulated VM:
//!
//! * arenas are grown with anonymous `mmap`-style mappings whose
//!   capabilities carry [`cheri_cap::CapSource::Syscall`] provenance;
//! * allocation sizes are padded with CRRL and aligned with CRAM so that
//!   compressed bounds are **exact** — the paper's footnote-2 requirement
//!   that "memory allocators and stack layout must pad allocation sizes";
//! * returned capabilities are retagged [`cheri_cap::CapSource::Malloc`]
//!   (the Figure 5 "malloc" series);
//! * `free`/`realloc` use the *presented* capability only to look up the
//!   allocator's internal capability, which is then discarded or rederived
//!   (§3 "Memory allocation") — a forged or out-of-bounds pointer cannot
//!   free anything;
//! * an AddressSanitizer mode adds 16-byte redzones and poisons the shadow
//!   map, the software baseline of Tables 1 and 3.
//!
//! Each operation accumulates a representative cycle cost in
//! [`Allocator::take_charges`], which the kernel drains into the CPU's
//! cycle counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cheri_cap::{CapFault, CapSource, Capability, Perms};
use cheri_vm::{AsId, Backing, Prot, Vm, VmError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Base of the AddressSanitizer shadow region (mirrors
/// `cheri_isa::codegen::ASAN_SHADOW_BASE`; duplicated to avoid a dependency
/// cycle and checked equal in the kernel's tests).
pub const ASAN_SHADOW_BASE: u64 = 0x2000_0000_0000;

/// Allocation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// The heap could not grow.
    OutOfMemory,
    /// `free`/`realloc` called with a pointer that is not a live allocation
    /// base (or whose capability failed validation).
    BadFree,
    /// The presented capability was untagged or sealed.
    BadCapability(CapFault),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of memory"),
            AllocError::BadFree => write!(f, "invalid free"),
            AllocError::BadCapability(c) => write!(f, "bad capability: {c}"),
        }
    }
}

impl Error for AllocError {}

impl From<VmError> for AllocError {
    fn from(_: VmError) -> AllocError {
        AllocError::OutOfMemory
    }
}

#[derive(Clone, Copy, Debug)]
struct AllocMeta {
    /// The allocator's internal capability for the padded region.
    cap: Capability,
    /// The user-requested length.
    req_len: u64,
    /// Padded (representable) length.
    padded: u64,
}

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Bytes currently live (padded sizes).
    pub live_bytes: u64,
    /// Arena chunks mapped.
    pub chunks: u64,
}

/// The per-process allocator state.
#[derive(Clone)]
pub struct Allocator {
    space: AsId,
    asan: bool,
    /// Free lists per size class (padded size -> base addresses).
    free_lists: HashMap<u64, Vec<u64>>,
    /// Live allocations by base address.
    live: HashMap<u64, AllocMeta>,
    /// Current bump chunk: (cap, next offset, end offset).
    chunk: Option<(Capability, u64, u64)>,
    /// Temporal-safety mode: freed regions are quarantined until a
    /// revocation sweep instead of being recycled immediately.
    temporal: bool,
    /// Quarantined regions: (user base, padded len, slot base, slot size).
    quarantine: Vec<(u64, u64, u64, u64)>,
    /// Accumulated runtime cost not yet charged to the CPU.
    pending_cycles: u64,
    pending_instrs: u64,
    /// Statistics.
    pub stats: AllocStats,
}

impl fmt::Debug for Allocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Allocator{{space={:?}, {:?}}}", self.space, self.stats)
    }
}

const CHUNK_SIZE: u64 = 256 * 1024;
const REDZONE: u64 = 16;

impl Allocator {
    /// Creates the allocator for address space `space`.
    #[must_use]
    pub fn new(space: AsId, asan: bool) -> Allocator {
        Allocator {
            space,
            asan,
            free_lists: HashMap::new(),
            live: HashMap::new(),
            chunk: None,
            temporal: false,
            quarantine: Vec::new(),
            pending_cycles: 0,
            pending_instrs: 0,
            stats: AllocStats::default(),
        }
    }

    /// Clones this allocator's state for a forked child whose address space
    /// is a COW copy of the parent's (identical heap layout, new space id).
    #[must_use]
    pub fn retarget(&self, space: AsId) -> Allocator {
        let mut a = self.clone();
        a.space = space;
        a
    }

    /// Enables/disables temporal-safety mode (quarantine + revocation, the
    /// paper's §6 "work on a CHERI-aware temporally-safe allocator is
    /// ongoing"). CHERI provides exactly the needed infrastructure:
    /// "atomic pointer updates and the precise identification of pointers".
    pub fn set_temporal(&mut self, on: bool) {
        self.temporal = on;
    }

    /// Whether temporal-safety mode is active.
    #[must_use]
    pub fn temporal(&self) -> bool {
        self.temporal
    }

    /// The regions currently in quarantine, as `(base, len)` pairs.
    #[must_use]
    pub fn quarantined_ranges(&self) -> Vec<(u64, u64)> {
        self.quarantine.iter().map(|&(b, l, _, _)| (b, l)).collect()
    }

    /// Revocation sweep: scans every tagged capability in the space's
    /// resident memory and clears the tags of those pointing into
    /// quarantined regions, then returns the quarantined slots to the free
    /// lists. Returns `(capabilities revoked, regions recycled)`.
    ///
    /// This is precise revocation in the style the paper's future-work
    /// section anticipates: tags make every pointer identifiable, so a
    /// sweep can kill all stale references before memory is reused.
    ///
    /// # Errors
    ///
    /// Propagates VM failures as [`AllocError::OutOfMemory`].
    pub fn revoke(&mut self, vm: &mut Vm) -> Result<(u64, u64), AllocError> {
        if self.quarantine.is_empty() {
            return Ok((0, 0));
        }
        let ranges = self.quarantined_ranges();
        let hits_quarantine = |cap: &Capability| {
            ranges
                .iter()
                .any(|&(b, l)| (cap.base() as u128) < (b + l) as u128 && cap.top() > b as u128)
        };
        // Sweep all resident pages of the space.
        let pages: Vec<(u64, cheri_mem::FrameId)> = vm
            .space(self.space)
            .pages
            .iter()
            .filter_map(|(&vpn, st)| match st {
                cheri_vm::PageState::Resident { frame, .. } => Some((vpn, *frame)),
                cheri_vm::PageState::Swapped { .. } => None,
            })
            .collect();
        let mut revoked = 0u64;
        for (_vpn, frame) in &pages {
            let caps = vm
                .phys
                .scan_caps(*frame)
                .map_err(|_| AllocError::OutOfMemory)?;
            for (off, cap) in caps {
                if hits_quarantine(&cap) {
                    vm.phys
                        .store_cap(cheri_mem::PAddr::new(*frame, off), cap.clear_tag())
                        .map_err(|_| AllocError::OutOfMemory)?;
                    revoked += 1;
                }
            }
        }
        self.charge(pages.len() as u64 * 50 + 100);
        // Recycle the quarantined slots.
        let recycled = self.quarantine.len() as u64;
        for (_, _, slot_base, slot_size) in std::mem::take(&mut self.quarantine) {
            self.free_lists
                .entry(slot_size)
                .or_default()
                .push(slot_base);
        }
        Ok((revoked, recycled))
    }

    /// Drains the accumulated (instructions, cycles) cost of allocator work
    /// so the kernel can charge it to the CPU.
    pub fn take_charges(&mut self) -> (u64, u64) {
        let out = (self.pending_instrs, self.pending_cycles);
        self.pending_instrs = 0;
        self.pending_cycles = 0;
        out
    }

    fn charge(&mut self, instrs: u64) {
        self.pending_instrs += instrs;
        // In-order core: roughly 1.2 cycles per runtime instruction.
        self.pending_cycles += instrs + instrs / 5;
    }

    /// The padded size class for a request (CRRL plus a capability-size
    /// floor, so every slot can hold aligned capabilities).
    #[must_use]
    pub fn padded_size(&self, vm: &Vm, len: u64) -> u64 {
        let fmt = vm.space_format(self.space);
        let unit = fmt.in_memory_size().max(16);
        let len = len.max(1).div_ceil(unit) * unit;
        fmt.representable_length(len)
    }

    /// Allocates `len` bytes; returns a capability bounded to the padded
    /// request with `VMMAP` and `EXECUTE` stripped and `Malloc` provenance.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if the heap cannot grow.
    pub fn malloc(&mut self, vm: &mut Vm, len: u64) -> Result<Capability, AllocError> {
        self.charge(60);
        let padded = self.padded_size(vm, len);
        let with_rz = if self.asan {
            padded + 2 * REDZONE
        } else {
            padded
        };
        let base = match self.free_lists.get_mut(&with_rz).and_then(Vec::pop) {
            Some(b) => b,
            None => self.carve(vm, with_rz)?,
        };
        let user_base = if self.asan { base + REDZONE } else { base };
        let root = vm.space(self.space).root;
        // "We install bounds matching the requested allocation before
        // return" (§4): the capability is bounded to the *request*, not the
        // slot; only representability (CRRL) can force it wider.
        let req = len.max(1);
        let cap = root
            .with_addr(user_base)
            .set_bounds(req, true)
            .or_else(|_| {
                root.with_addr(user_base)
                    .set_bounds(vm.space_format(self.space).representable_length(req), true)
            })
            .map_err(AllocError::BadCapability)?
            .and_perms(Perms::user_data() - Perms::VMMAP)
            .with_source(CapSource::Malloc);
        self.live.insert(
            user_base,
            AllocMeta {
                cap,
                req_len: len,
                padded,
            },
        );
        self.stats.allocs += 1;
        self.stats.live_bytes += padded;
        if self.asan {
            self.poison(vm, base, REDZONE, 0xfa)?; // left redzone
            self.unpoison_object(vm, user_base, len)?;
            self.poison(vm, user_base + padded, REDZONE, 0xfb)?; // right
            self.charge(40);
        }
        Ok(cap)
    }

    fn carve(&mut self, vm: &mut Vm, size: u64) -> Result<u64, AllocError> {
        // Align the carve point so compressed bounds of `size` are exact
        // and capability stores within the slot are aligned.
        let fmt = vm.space_format(self.space);
        let unit = fmt.in_memory_size().max(16);
        let mask = fmt.representable_alignment_mask(size) & !(unit - 1);
        loop {
            if let Some((cap, next, end)) = &mut self.chunk {
                let aligned = (*next + !mask) & mask;
                if aligned + size <= *end {
                    *next = aligned + size;
                    let base = cap.base() + aligned;
                    return Ok(base);
                }
            }
            // Grow: "each allocator maintains a set of architectural
            // capabilities to regions allocated by mmap" (§3).
            self.charge(300);
            let want = CHUNK_SIZE.max(size.next_power_of_two());
            let start = vm.map(self.space, None, want, Prot::rw(), Backing::Zero, "heap")?;
            if self.asan {
                // Real ASan keeps unallocated arena memory poisoned; fresh
                // chunks start fully poisoned and malloc unpoisons objects.
                self.poison(vm, start, want, 0xfa)?;
                self.charge(want / 256);
            }
            let root = vm.space(self.space).root;
            let chunk_cap = root
                .with_addr(start)
                .set_bounds(want, false)
                .map_err(AllocError::BadCapability)?
                .and_perms(Prot::rw().as_cap_perms())
                .with_source(CapSource::Syscall);
            self.stats.chunks += 1;
            self.chunk = Some((chunk_cap, 0, want));
        }
    }

    /// Frees an allocation. Under CheriABI the caller presents its
    /// capability: it must be tagged, unsealed, and point at the base of a
    /// live allocation; the allocator then discards its internal capability.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadCapability`] for untagged/sealed capabilities,
    /// [`AllocError::BadFree`] for pointers that are not live bases.
    pub fn free(&mut self, vm: &mut Vm, user_cap: &Capability) -> Result<(), AllocError> {
        if !user_cap.tag() {
            return Err(AllocError::BadCapability(CapFault::TagViolation));
        }
        if user_cap.is_sealed() {
            return Err(AllocError::BadCapability(CapFault::SealViolation));
        }
        self.free_addr(vm, user_cap.addr())
    }

    /// Legacy-ABI free: only an address is presented.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] if `addr` is not a live allocation base.
    pub fn free_addr(&mut self, vm: &mut Vm, addr: u64) -> Result<(), AllocError> {
        self.charge(40);
        let meta = self.live.remove(&addr).ok_or(AllocError::BadFree)?;
        let with_rz = if self.asan {
            meta.padded + 2 * REDZONE
        } else {
            meta.padded
        };
        let slot_base = if self.asan { addr - REDZONE } else { addr };
        if self.asan {
            self.poison(vm, addr, meta.padded, 0xfd)?; // freed-memory poison
            self.charge(20);
        }
        if self.temporal {
            // Quarantine until the next revocation sweep.
            self.quarantine
                .push((addr, meta.padded, slot_base, with_rz));
        } else {
            self.free_lists.entry(with_rz).or_default().push(slot_base);
        }
        self.stats.frees += 1;
        self.stats.live_bytes -= meta.padded;
        Ok(())
    }

    /// Reallocates: allocates the new size, copies `min(old, new)` bytes
    /// **capability-preservingly** (16-byte granules move as tagged loads
    /// and stores), frees the old region, and returns the new capability
    /// rederived from the allocator's internal state.
    ///
    /// # Errors
    ///
    /// As for [`Allocator::malloc`] and [`Allocator::free`].
    pub fn realloc(
        &mut self,
        vm: &mut Vm,
        user_cap: &Capability,
        new_len: u64,
    ) -> Result<Capability, AllocError> {
        if !user_cap.tag() {
            return Err(AllocError::BadCapability(CapFault::TagViolation));
        }
        let old = *self.live.get(&user_cap.addr()).ok_or(AllocError::BadFree)?;
        let new_cap = self.malloc(vm, new_len)?;
        let n = old.req_len.min(new_len);
        self.charge(n / 8 + 20);
        // Tag-preserving copy, granule by granule.
        let mut off = 0;
        while off + 16 <= n {
            match vm.load_cap(self.space, old.cap.base() + off)? {
                Some(c) => vm.store_cap(self.space, new_cap.base() + off, c)?,
                None => {
                    let mut buf = [0u8; 16];
                    vm.read_bytes(self.space, old.cap.base() + off, &mut buf)?;
                    vm.write_bytes(self.space, new_cap.base() + off, &buf)?;
                }
            }
            off += 16;
        }
        if off < n {
            let mut buf = vec![0u8; (n - off) as usize];
            vm.read_bytes(self.space, old.cap.base() + off, &mut buf)?;
            vm.write_bytes(self.space, new_cap.base() + off, &buf)?;
        }
        self.free_addr(vm, old.cap.base())?;
        Ok(new_cap)
    }

    /// Looks up the live allocation containing `addr` (diagnostics).
    #[must_use]
    pub fn allocation_at(&self, addr: u64) -> Option<(u64, u64)> {
        self.live
            .iter()
            .find(|(base, m)| addr >= **base && addr < **base + m.padded)
            .map(|(base, m)| (*base, m.req_len))
    }

    // ---- asan shadow helpers ----

    fn poison(&mut self, vm: &mut Vm, start: u64, len: u64, val: u8) -> Result<(), AllocError> {
        let s0 = ASAN_SHADOW_BASE + start / 8;
        let s1 = ASAN_SHADOW_BASE + (start + len) / 8;
        let buf = vec![val; (s1 - s0) as usize];
        vm.write_bytes(self.space, s0, &buf)?;
        Ok(())
    }

    fn unpoison_object(&mut self, vm: &mut Vm, start: u64, len: u64) -> Result<(), AllocError> {
        debug_assert_eq!(start % 8, 0);
        let full = len / 8;
        let buf = vec![0u8; full as usize];
        vm.write_bytes(self.space, ASAN_SHADOW_BASE + start / 8, &buf)?;
        if !len.is_multiple_of(8) {
            vm.write_bytes(
                self.space,
                ASAN_SHADOW_BASE + start / 8 + full,
                &[(len % 8) as u8],
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, PrincipalId};

    fn setup(asan: bool) -> (Vm, Allocator) {
        let mut vm = Vm::new(1024);
        let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        if asan {
            // Kernel maps the (lazily populated) shadow region covering the
            // whole low user range for asan processes.
            vm.map(
                id,
                Some(ASAN_SHADOW_BASE),
                1 << 41,
                Prot::rw(),
                Backing::Zero,
                "shadow",
            )
            .unwrap();
        }
        (vm, Allocator::new(id, asan))
    }

    #[test]
    fn malloc_returns_bounded_unmappable_cap() {
        let (mut vm, mut a) = setup(false);
        let c = a.malloc(&mut vm, 100).unwrap();
        assert!(c.tag());
        assert_eq!(c.length(), 100, "bounds match the request exactly");
        assert!(!c.perms().contains(Perms::VMMAP));
        assert!(!c.perms().contains(Perms::EXECUTE));
        assert!(c.perms().contains(Perms::LOAD | Perms::STORE));
        assert_eq!(c.provenance().source, CapSource::Malloc);
        assert!(c.check_access(c.base() + 99, 1, Perms::LOAD).is_ok());
        assert!(c.check_access(c.base() + 100, 1, Perms::LOAD).is_err());
    }

    #[test]
    fn large_allocations_have_exact_compressed_bounds() {
        let (mut vm, mut a) = setup(false);
        for len in [100u64, 5000, 70_000, (1 << 20) + 7] {
            let c = a.malloc(&mut vm, len).unwrap();
            assert!(c.length() >= len);
            assert_eq!(c.base() % 16, 0);
            // Bounds are the request, or its CRRL rounding when the
            // compressed format cannot represent it exactly.
            assert!(c.length() <= a.padded_size(&vm, len), "len={len}");
        }
    }

    #[test]
    fn free_requires_live_base() {
        let (mut vm, mut a) = setup(false);
        let c = a.malloc(&mut vm, 64).unwrap();
        // Interior pointer is rejected.
        assert_eq!(a.free(&mut vm, &c.inc_addr(8)), Err(AllocError::BadFree));
        // Untagged pointer is rejected.
        assert_eq!(
            a.free(&mut vm, &c.clear_tag()),
            Err(AllocError::BadCapability(CapFault::TagViolation))
        );
        assert!(a.free(&mut vm, &c).is_ok());
        // Double free rejected.
        assert_eq!(a.free(&mut vm, &c), Err(AllocError::BadFree));
    }

    #[test]
    fn freed_memory_is_recycled() {
        let (mut vm, mut a) = setup(false);
        let c1 = a.malloc(&mut vm, 64).unwrap();
        let b1 = c1.base();
        a.free(&mut vm, &c1).unwrap();
        let c2 = a.malloc(&mut vm, 64).unwrap();
        assert_eq!(c2.base(), b1, "same size class reuses the slot");
    }

    #[test]
    fn realloc_preserves_data_and_tags() {
        let (mut vm, mut a) = setup(false);
        let c = a.malloc(&mut vm, 64).unwrap();
        vm.write_u64(a.space, c.base(), 0x1122).unwrap();
        let inner = a.malloc(&mut vm, 16).unwrap();
        vm.store_cap(a.space, c.base() + 16, inner).unwrap();
        let bigger = a.realloc(&mut vm, &c, 256).unwrap();
        assert_eq!(vm.read_u64(a.space, bigger.base()).unwrap(), 0x1122);
        let moved = vm.load_cap(a.space, bigger.base() + 16).unwrap();
        assert_eq!(moved, Some(inner), "capability moved with its tag");
        assert!(bigger.length() >= 256);
    }

    #[test]
    fn asan_mode_poisons_redzones() {
        let (mut vm, mut a) = setup(true);
        let space = a.space;
        let c = a.malloc(&mut vm, 24).unwrap();
        let shadow = move |vm: &mut Vm, addr: u64| {
            let mut b = [0u8; 1];
            vm.read_bytes(space, ASAN_SHADOW_BASE + addr / 8, &mut b)
                .unwrap();
            b[0]
        };
        assert_eq!(shadow(&mut vm, c.base() - 8), 0xfa, "left redzone");
        assert_eq!(shadow(&mut vm, c.base()), 0, "object valid");
        assert_eq!(shadow(&mut vm, c.base() + 32), 0xfb, "right redzone");
        a.free(&mut vm, &c).unwrap();
        assert_eq!(shadow(&mut vm, c.base()), 0xfd, "freed poison");
    }

    #[test]
    fn charges_accumulate_and_drain() {
        let (mut vm, mut a) = setup(false);
        let _ = a.malloc(&mut vm, 64).unwrap();
        let (i, c) = a.take_charges();
        assert!(i > 0 && c >= i);
        assert_eq!(a.take_charges(), (0, 0));
    }
}
