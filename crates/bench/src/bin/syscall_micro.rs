//! Regenerates the **§5.2 system-call micro-benchmarks**: per-call cycle
//! costs under both ABIs. The paper reports deltas "from 3.4% slower for
//! fork, to 9.8% faster for select" (the select win comes from the legacy
//! kernel having to construct capabilities from four integer pointer
//! arguments).

use cheri_bench::{measure, micro_benchmarks};
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::AbiMode;

fn main() {
    println!("Syscall micro-benchmarks: cycles per call");
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "syscall", "mips64", "cheriabi", "delta"
    );
    for (name, build, iters) in micro_benchmarks() {
        // Calibrate loop overhead away by measuring two iteration counts.
        let cycles_per_call = |opts, abi| {
            let (_, m_lo) = measure(&build(opts, iters / 2), abi, false);
            let (_, m_hi) = measure(&build(opts, iters), abi, false);
            (m_hi.cycles - m_lo.cycles) as f64 / (iters - iters / 2) as f64
        };
        let m = cycles_per_call(CodegenOpts::mips64(), AbiMode::Mips64);
        let c = cycles_per_call(CodegenOpts::purecap(), AbiMode::CheriAbi);
        let delta = (c / m - 1.0) * 100.0;
        println!("{:<10} {:>14.0} {:>14.0} {:>+8.1}%", name, m, c, delta);
    }
    println!();
    println!(
        "Paper (§5.2): \"performance impact varies from 3.4% slower for\n\
         fork, to 9.8% faster for select\"."
    );
}
