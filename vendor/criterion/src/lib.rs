//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API that `cheri-bench` uses:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function` with a
//! [`Bencher`], and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs `sample_size` timed samples and prints the mean and
//! min/max wall time per iteration — enough to track the *relative* cost of
//! the DESIGN.md ablations, which is all the real benches claim.

use std::time::{Duration, Instant};

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iterations as f64);
            }
        }
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.name);
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {}/{id}: mean {:.3} ms/iter (min {:.3}, max {:.3}, {} samples)",
            self.name,
            mean * 1e3,
            min * 1e3,
            max * 1e3,
            samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `f` (called once per sample).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
