//! The adversarial corpus: exploit-shaped guest programs that *score
//! themselves*.
//!
//! Table 1 asks "does honest code still run?"; this module asks the dual
//! question, "does dishonest code still win?". Each attack family is a
//! small guest program built around a victim/canary protocol: the program
//! plants a secret (or a canary) in memory it does not legitimately own a
//! pointer to, runs one exploit technique against it, and then *reports
//! its own outcome* through the exit code:
//!
//! * [`ESCAPED_EXIT`] (42) — the exploit reached the victim: it read the
//!   secret or corrupted the canary across an allocation boundary;
//! * [`DEGRADED_EXIT`] (7) — every operation completed without a trap,
//!   but the payload landed somewhere harmless (e.g. a quarantined slot
//!   instead of the reused allocation): the attack ran, the goal failed;
//! * exit 0 — the attack was stopped *visibly* (an `EINVAL` from the
//!   allocator, an aliasing probe that came back clean);
//! * a capability trap ([`ExitStatus::Fault`]) — the hardware said no.
//!
//! Both of the last two score [`Verdict::Defeated`]. The protocol makes
//! the attack table self-enforcing: a simulator regression that silently
//! *weakens* protection flips a `Defeated` row to `Escaped` rather than
//! hiding in a pass count (and `--weaken-quarantine` exists precisely to
//! prove that flip is observable).
//!
//! The families cover the two safety axes the paper separates:
//!
//! * **spatial** — out-of-bounds read/write into an adjacent allocation,
//!   capability forging from integer data, and integer-to-pointer
//!   laundering through the legacy `(void *)(uintptr_t)x` path. CheriABI
//!   defeats all four ABI-architecturally (bounds and tags), in strict
//!   *and* hardened mode; mips64 escapes.
//! * **temporal** — use-after-free through allocator reuse, through a
//!   revocation sweep, and through swap-out/in; double-free and
//!   realloc-stale probes. Strict CheriABI *does not* defeat reuse-based
//!   UAF (the stale capability stays tagged — exactly why the paper's
//!   successors built revocation); the hardened membrane's quarantine +
//!   sweep does, and the swap variant proves the sweep reaches swapped-out
//!   capabilities too.

use crate::suite::CaseBuilder;
use cheri_isa::codegen::{FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{ExitStatus, Sys};
use cheri_rtld::Program;
use cheriabi::guest::GuestOps;
use cheriabi::harness::CaseOutcome;
use std::fmt;
use std::sync::Arc;

/// Exit code an attack uses to report "I reached the victim".
pub const ESCAPED_EXIT: i64 = 42;

/// Exit code an attack uses to report "I ran to completion but the payload
/// landed somewhere harmless".
pub const DEGRADED_EXIT: i64 = 7;

/// The attack-outcome classification — one cell of the attack table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// The attack was stopped: a capability trap, an allocator `EINVAL`,
    /// or a clean self-report (exit 0).
    Defeated,
    /// The attack completed without a trap but missed its goal (exit
    /// [`DEGRADED_EXIT`]) — the quarantine absorbing a stale write, a
    /// repaired double free.
    Degraded,
    /// The attack reached the victim (exit [`ESCAPED_EXIT`]).
    Escaped,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Defeated => write!(f, "Defeated"),
            Verdict::Degraded => write!(f, "Degraded"),
            Verdict::Escaped => write!(f, "Escaped"),
        }
    }
}

/// Scores a harness outcome under the victim/canary protocol. `None`
/// means the run did not produce a verdict at all (host panic, load
/// failure, deadline, divergence, unexpected exit code) — the attack
/// table treats that as a table failure, never as a row.
#[must_use]
pub fn verdict(outcome: &CaseOutcome) -> Option<Verdict> {
    match outcome {
        CaseOutcome::Exited(ExitStatus::Code(0)) => Some(Verdict::Defeated),
        CaseOutcome::Exited(ExitStatus::Code(DEGRADED_EXIT)) => Some(Verdict::Degraded),
        CaseOutcome::Exited(ExitStatus::Code(ESCAPED_EXIT)) => Some(Verdict::Escaped),
        CaseOutcome::Exited(ExitStatus::Fault(_) | ExitStatus::SanitizerAbort) => {
            Some(Verdict::Defeated)
        }
        _ => None,
    }
}

/// One attack family: a named corpus case plus its one-line goal.
pub struct AttackCase {
    /// Corpus case name (registered in the [`crate::suite`] builder map,
    /// so `ProgramSpec::Corpus` lowers it like any other case).
    pub name: String,
    /// Short family key for table rows (`oob-read`, `uaf-sweep`, ...).
    pub family: &'static str,
    /// What the exploit is trying to achieve.
    pub goal: &'static str,
    /// Builds the guest program.
    pub build: CaseBuilder,
}

impl fmt::Debug for AttackCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttackCase({}, {})", self.name, self.family)
    }
}

fn attack(
    family: &'static str,
    goal: &'static str,
    body: impl Fn(&mut FnBuilder<'_>) + Send + Sync + 'static,
) -> AttackCase {
    let name = format!("atk-{family}");
    let build: CaseBuilder = {
        let name = name.clone();
        Arc::new(move |opts| -> Program { crate::families::single_main(&name, opts, &body) })
    };
    AttackCase {
        name,
        family,
        goal,
        build,
    }
}

/// Emits the self-scoring tail: exit [`ESCAPED_EXIT`] when `got ==
/// escaped_if` (the payload reached the victim), else [`DEGRADED_EXIT`]
/// (everything ran, the goal failed). Clobbers `Val(5)`.
fn exit_verdict(f: &mut FnBuilder<'_>, got: Val, escaped_if: i64) {
    f.li(Val(5), escaped_if);
    let miss = f.label();
    f.bne(got, Val(5), miss);
    f.sys_exit_imm(ESCAPED_EXIT);
    f.bind(miss);
    f.sys_exit_imm(DEGRADED_EXIT);
}

/// The full adversarial corpus, in table order.
#[must_use]
pub fn attack_suite() -> Vec<AttackCase> {
    vec![
        // ---- spatial --------------------------------------------------
        attack(
            "oob-read",
            "read a secret from the adjacent allocation",
            |f| {
                // Attacker buffer, then the victim right after it in the
                // same 64-byte size class (the allocator carves slots
                // sequentially from a fresh chunk).
                f.malloc_imm(Ptr(0), 64);
                f.malloc_imm(Ptr(1), 64);
                f.li(Val(0), 3133);
                f.store(Val(0), Ptr(1), 0, Width::D);
                // Heartbleed-shaped: walk one slot past our own bounds.
                f.load(Val(1), Ptr(0), 64, Width::D, false);
                exit_verdict(f, Val(1), 3133);
            },
        ),
        attack(
            "oob-write",
            "corrupt the adjacent allocation's canary",
            |f| {
                f.malloc_imm(Ptr(0), 64);
                f.malloc_imm(Ptr(1), 64);
                f.li(Val(0), 7777);
                f.store(Val(0), Ptr(1), 0, Width::D);
                // Overflow the attacker buffer into the victim's canary.
                f.li(Val(1), 666);
                f.store(Val(1), Ptr(0), 64, Width::D);
                f.load(Val(2), Ptr(1), 0, Width::D, false);
                exit_verdict(f, Val(2), 666);
            },
        ),
        attack(
            "forge",
            "rebuild a pointer to the secret from integer bytes",
            |f| {
                f.malloc_imm(Ptr(1), 64); // victim holding the secret
                f.li(Val(0), 2025);
                f.store(Val(0), Ptr(1), 0, Width::D);
                f.malloc_imm(Ptr(0), 64); // attacker scratch
                                          // Launder the victim's address through plain integer
                                          // memory: store it as data, reload it as a pointer.
                f.ptr_to_int(Val(1), Ptr(1));
                f.store(Val(1), Ptr(0), 0, Width::D);
                f.load_ptr(Ptr(2), Ptr(0), 0);
                f.load(Val(2), Ptr(2), 0, Width::D, false);
                exit_verdict(f, Val(2), 2025);
            },
        ),
        attack(
            "launder-ddc",
            "cast the secret's address through (void *)(uintptr_t)x",
            |f| {
                f.malloc_imm(Ptr(1), 64);
                f.li(Val(0), 1776);
                f.store(Val(0), Ptr(1), 0, Width::D);
                f.malloc_imm(Ptr(0), 64);
                // The Table 2 idiom: integer in, pointer out. Legacy code
                // gets a space-wide pointer for free (DDC covers the
                // space); CheriABI derives from the attacker's own
                // capability, whose bounds do not include the victim.
                f.ptr_to_int(Val(1), Ptr(1));
                f.int_to_ptr(Ptr(2), Val(1), Ptr(0));
                f.load(Val(2), Ptr(2), 0, Width::D, false);
                exit_verdict(f, Val(2), 1776);
            },
        ),
        // ---- temporal -------------------------------------------------
        attack(
            "uaf-reuse",
            "write the freed slot after the allocator hands it out again",
            |f| {
                f.malloc_imm(Ptr(3), 64); // hiding spot for the stale pointer
                f.malloc_imm(Ptr(0), 64); // victim-to-be
                f.li(Val(0), 1111);
                f.store(Val(0), Ptr(0), 0, Width::D);
                f.store_ptr(Ptr(0), Ptr(3), 0);
                f.free(Ptr(0));
                // Strict allocators recycle immediately: the new 64-byte
                // allocation is the old slot. The hardened quarantine
                // keeps the slot sequestered instead.
                f.malloc_imm(Ptr(1), 64);
                f.li(Val(1), 2222);
                f.store(Val(1), Ptr(1), 0, Width::D);
                f.load_ptr(Ptr(2), Ptr(3), 0);
                f.load(Val(2), Ptr(2), 0, Width::D, false);
                exit_verdict(f, Val(2), 2222);
            },
        ),
        attack(
            "uaf-sweep",
            "dereference a stale capability after a revocation sweep",
            |f| {
                f.malloc_imm(Ptr(3), 64);
                // A free() this size crosses the hardened byte threshold
                // by itself, so the sweep runs inside the free.
                f.malloc_imm(Ptr(0), 17000);
                f.store_ptr(Ptr(0), Ptr(3), 0);
                f.free(Ptr(0));
                f.malloc_imm(Ptr(1), 17000); // the recycled slot
                f.li(Val(1), 4242);
                f.store(Val(1), Ptr(1), 0, Width::D);
                f.load_ptr(Ptr(2), Ptr(3), 0);
                f.load(Val(2), Ptr(2), 0, Width::D, false);
                exit_verdict(f, Val(2), 4242);
            },
        ),
        attack(
            "uaf-swap",
            "hide the stale capability in a swapped-out page across the sweep",
            |f| {
                f.malloc_imm(Ptr(3), 64);
                f.malloc_imm(Ptr(0), 64);
                f.store_ptr(Ptr(0), Ptr(3), 0);
                f.free(Ptr(0));
                // Evict everything — the page holding the stale capability
                // included — so a sweep that only walked resident memory
                // would miss it.
                f.li(Val(0), 100_000);
                f.set_arg_val(0, Val(0));
                f.syscall(Sys::Swapctl as i64);
                // Cross the sweep threshold while the page is on disk.
                f.malloc_imm(Ptr(1), 17000);
                f.free(Ptr(1));
                // The freed 64-byte slot comes back into circulation.
                f.malloc_imm(Ptr(1), 64);
                f.li(Val(1), 4242);
                f.store(Val(1), Ptr(1), 0, Width::D);
                // Swap the hiding spot back in and spend the stale pointer.
                f.load_ptr(Ptr(2), Ptr(3), 0);
                f.load(Val(2), Ptr(2), 0, Width::D, false);
                exit_verdict(f, Val(2), 4242);
            },
        ),
        attack(
            "double-free",
            "corrupt allocator state by freeing the same slot twice",
            |f| {
                f.malloc_imm(Ptr(0), 64);
                f.free(Ptr(0));
                f.free(Ptr(0));
                f.ret_val_to(Val(0)); // 0, or -EINVAL when rejected
                                      // Classic payoff probe: a corrupted free list hands the
                                      // same slot out twice.
                f.malloc_imm(Ptr(1), 64);
                f.malloc_imm(Ptr(2), 64);
                f.ptr_to_int(Val(1), Ptr(1));
                f.ptr_to_int(Val(2), Ptr(2));
                let distinct = f.label();
                f.bne(Val(1), Val(2), distinct);
                f.sys_exit_imm(ESCAPED_EXIT);
                f.bind(distinct);
                // No aliasing. Rejected loudly (EINVAL) = defeated;
                // absorbed silently (hardened repair) = degraded.
                let rejected = f.label();
                f.bnez(Val(0), rejected);
                f.sys_exit_imm(DEGRADED_EXIT);
                f.bind(rejected);
                f.sys_exit_imm(0);
            },
        ),
        attack(
            "realloc-reuse",
            "write through the pre-realloc pointer into the recycled slot",
            |f| {
                f.malloc_imm(Ptr(3), 64);
                f.malloc_imm(Ptr(0), 32);
                f.store_ptr(Ptr(0), Ptr(3), 0);
                // Growing past the padded size moves the allocation and
                // frees the old slot.
                f.li(Val(0), 128);
                f.realloc(Ptr(1), Ptr(0), Val(0));
                // The old 32-byte slot returns on the next fit (strict).
                f.malloc_imm(Ptr(1), 32);
                f.li(Val(1), 999);
                f.store(Val(1), Ptr(1), 0, Width::D);
                // Spend the stale pre-realloc pointer.
                f.load_ptr(Ptr(2), Ptr(3), 0);
                f.li(Val(2), 5555);
                f.store(Val(2), Ptr(2), 0, Width::D);
                f.load(Val(3), Ptr(1), 0, Width::D, false);
                exit_verdict(f, Val(3), 5555);
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::opts_for;
    use cheri_kernel::AbiMode;
    use cheriabi::harness::{execute_spec, MembraneMode, OracleMode, RunSpec};
    use cheriabi::spec::ProgramSpec;

    fn attack_spec(case: &AttackCase, abi: AbiMode, mode: MembraneMode) -> RunSpec {
        RunSpec::new(
            case.name.clone(),
            ProgramSpec::Corpus {
                case: case.name.clone(),
            },
            opts_for(abi),
            abi,
        )
        .with_budget(20_000_000)
        .with_abi_mode(mode)
    }

    fn run(case: &AttackCase, abi: AbiMode, mode: MembraneMode) -> Verdict {
        let report = execute_spec(&crate::suite::registry(), &attack_spec(case, abi, mode));
        verdict(&report.outcome)
            .unwrap_or_else(|| panic!("{} ({abi}, {mode:?}): {:?}", case.name, report.outcome))
    }

    #[test]
    fn every_family_is_contained_under_the_hardened_membrane() {
        for case in attack_suite() {
            let v = run(&case, AbiMode::CheriAbi, MembraneMode::Hardened);
            assert!(
                v <= Verdict::Degraded,
                "{}: hardened purecap let the attack escape",
                case.name
            );
        }
    }

    #[test]
    fn spatial_attacks_die_under_strict_cheriabi_but_escape_mips64() {
        for family in ["oob-read", "oob-write", "forge", "launder-ddc"] {
            let case = attack_suite()
                .into_iter()
                .find(|c| c.family == family)
                .expect("family exists");
            assert_eq!(
                run(&case, AbiMode::CheriAbi, MembraneMode::Strict),
                Verdict::Defeated,
                "{family} under strict purecap"
            );
            assert_eq!(
                run(&case, AbiMode::Mips64, MembraneMode::Strict),
                Verdict::Escaped,
                "{family} under mips64"
            );
        }
    }

    #[test]
    fn reuse_uaf_escapes_strict_cheriabi_and_only_the_membrane_stops_it() {
        // The paper's honest limitation: a stale capability stays tagged,
        // so allocator reuse is exploitable under the strict ABI.
        for family in ["uaf-reuse", "uaf-sweep", "uaf-swap", "realloc-reuse"] {
            let case = attack_suite()
                .into_iter()
                .find(|c| c.family == family)
                .expect("family exists");
            assert_eq!(
                run(&case, AbiMode::CheriAbi, MembraneMode::Strict),
                Verdict::Escaped,
                "{family} under strict purecap"
            );
            assert_eq!(
                run(&case, AbiMode::Mips64, MembraneMode::Strict),
                Verdict::Escaped,
                "{family} under mips64"
            );
        }
    }

    #[test]
    fn sweep_families_trap_while_quarantine_only_families_degrade() {
        let by_family = |family: &str| {
            attack_suite()
                .into_iter()
                .find(|c| c.family == family)
                .expect("family exists")
        };
        // Below the sweep threshold the quarantine absorbs the write
        // without a trap; at the threshold the revocation kills the tag.
        for (family, expect) in [
            ("uaf-reuse", Verdict::Degraded),
            ("realloc-reuse", Verdict::Degraded),
            ("uaf-sweep", Verdict::Defeated),
            ("uaf-swap", Verdict::Defeated),
            ("double-free", Verdict::Degraded),
        ] {
            assert_eq!(
                run(
                    &by_family(family),
                    AbiMode::CheriAbi,
                    MembraneMode::Hardened
                ),
                expect,
                "{family} under hardened purecap"
            );
        }
    }

    #[test]
    fn weakened_quarantine_lets_reuse_uaf_escape_again() {
        // The attack table's self-test: prove the verdicts measure the
        // membrane, not an accident of layout.
        let case = attack_suite()
            .into_iter()
            .find(|c| c.family == "uaf-reuse")
            .expect("family exists");
        let spec = attack_spec(&case, AbiMode::CheriAbi, MembraneMode::Hardened)
            .with_weaken_quarantine(true);
        let report = execute_spec(&crate::suite::registry(), &spec);
        assert_eq!(verdict(&report.outcome), Some(Verdict::Escaped));
    }

    #[test]
    fn hardened_attacks_stay_divergence_free_under_lockstep() {
        for case in attack_suite() {
            let spec = attack_spec(&case, AbiMode::CheriAbi, MembraneMode::Hardened)
                .with_oracle(OracleMode::Lockstep);
            let report = execute_spec(&crate::suite::registry(), &spec);
            assert!(
                verdict(&report.outcome).is_some(),
                "{}: {:?}",
                case.name,
                report.outcome
            );
        }
    }
}
