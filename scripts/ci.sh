#!/bin/sh
# CI gate: formatting, lints, and the tier-1 build + test pass.
#
# Run from the repository root. Fails fast on the first broken stage so the
# log points straight at the offending gate.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> report cache: warm table1 re-run is 100% hits and byte-identical"
cargo build --release -p cheri-bench --bins
rm -rf target/harness-cache
./target/release/table1 --jobs 2 --json --cache \
    > target/table1-cold.json 2> target/table1-cold.err
./target/release/table1 --jobs 2 --json --cache \
    > target/table1-warm.json 2> target/table1-warm.err
grep -q ", 0 misses" target/table1-warm.err || {
    echo "FAIL: warm table1 run executed cases instead of hitting the cache:"
    cat target/table1-warm.err
    exit 1
}
cmp target/table1-cold.json target/table1-warm.json || {
    echo "FAIL: warm table1 JSON differs from the cold run"
    exit 1
}

echo "==> shards: table1 0/2 + 1/2 merge byte-identically to the unsharded run"
./target/release/table1 --jobs 2 --shard 0/1 > target/table1-full.lines
./target/release/table1 --jobs 2 --shard 0/2 > target/table1-s0.lines
./target/release/table1 --jobs 2 --shard 1/2 > target/table1-s1.lines
sort -t: -k2,2n target/table1-s0.lines target/table1-s1.lines \
    > target/table1-merged.lines
cmp target/table1-full.lines target/table1-merged.lines || {
    echo "FAIL: merged shard output differs from the unsharded run"
    exit 1
}

echo "==> golden: pinned table1 sub-suite is byte-identical to the committed golden"
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --jobs 2 --no-cache --shard 0/1 > target/table1-pinned.lines
cmp scripts/golden/table1_pinned.golden target/table1-pinned.lines || {
    echo "FAIL: pinned sub-suite output differs from scripts/golden/table1_pinned.golden"
    echo "      (cycle/L2 metrics changed; if intentional, regenerate the golden:"
    echo "       ./target/release/run_specs --specs scripts/golden/table1_pinned.specs \\"
    echo "           --jobs 2 --no-cache --shard 0/1 > scripts/golden/table1_pinned.golden)"
    exit 1
}

echo "==> golden: pinned table3 sub-suite is byte-identical to the committed golden"
./target/release/run_specs --specs scripts/golden/table3_pinned.specs \
    --jobs 2 --no-cache --shard 0/1 > target/table3-pinned.lines
cmp scripts/golden/table3_pinned.golden target/table3-pinned.lines || {
    echo "FAIL: pinned sub-suite output differs from scripts/golden/table3_pinned.golden"
    echo "      (detection outcomes or metrics changed; if intentional, regenerate:"
    echo "       ./target/release/run_specs --specs scripts/golden/table3_pinned.specs \\"
    echo "           --jobs 2 --no-cache --shard 0/1 > scripts/golden/table3_pinned.golden)"
    exit 1
}

echo "==> tier equivalence: pinned suites byte-identical across all three exec modes"
# The pinned runs above used the default tier (--exec-mode template); the
# single-step and superblock tiers must reproduce them byte for byte.
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --jobs 2 --no-cache --no-fast-path --shard 0/1 > target/table1-singlestep.lines
cmp target/table1-pinned.lines target/table1-singlestep.lines || {
    echo "FAIL: guest metrics diverge between the template tier and the"
    echo "      single-step reference interpreter on the table1 pinned suite"
    exit 1
}
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --jobs 2 --no-cache --exec-mode superblock --shard 0/1 \
    > target/table1-superblock.lines
cmp target/table1-pinned.lines target/table1-superblock.lines || {
    echo "FAIL: guest metrics diverge between the template tier and the"
    echo "      superblock machine on the table1 pinned suite"
    exit 1
}
./target/release/run_specs --specs scripts/golden/table3_pinned.specs \
    --jobs 2 --no-cache --no-fast-path --shard 0/1 > target/table3-singlestep.lines
cmp target/table3-pinned.lines target/table3-singlestep.lines || {
    echo "FAIL: guest metrics diverge between the template tier and the"
    echo "      single-step reference interpreter on the table3 pinned suite"
    exit 1
}
./target/release/run_specs --specs scripts/golden/table3_pinned.specs \
    --jobs 2 --no-cache --exec-mode superblock --shard 0/1 \
    > target/table3-superblock.lines
cmp target/table3-pinned.lines target/table3-superblock.lines || {
    echo "FAIL: guest metrics diverge between the template tier and the"
    echo "      superblock machine on the table3 pinned suite"
    exit 1
}

echo "==> template tier: interp cross-check is clean, and catches --weaken-flush"
./target/release/interp_throughput --trials 1 --spin-iters 200000 \
    --out target/interp-smoke.json > /dev/null || {
    echo "FAIL: guest metrics diverge across interpreter modes (see above)"
    exit 1
}
if ./target/release/interp_throughput --trials 1 --spin-iters 200000 \
    --weaken-flush --out target/interp-weak.json > /dev/null 2>&1; then
    echo "FAIL: a dropped template exit flush went undetected — the cross-tier"
    echo "      metric check is broken (it must fail when residency is wrong)"
    exit 1
fi

echo "==> fleet: --exec-mode forwards through fleet workers byte-identically"
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --exec-mode superblock --dump-specs > target/execmode-dump.lines
[ "$(grep -c '"exec_mode":"superblock"' target/execmode-dump.lines)" \
    = "$(wc -l < target/execmode-dump.lines)" ] || {
    echo "FAIL: --exec-mode did not rewrite every spec (fleet workers and dumps"
    echo "      must see the mode the command line asked for)"
    exit 1
}
./target/release/table1 --jobs 2 --json --fleet 2 --exec-mode superblock \
    > target/table1-fleet-sb.json 2> target/table1-fleet-sb.err
cmp target/table1-cold.json target/table1-fleet-sb.json || {
    echo "FAIL: table1 under --fleet 2 --exec-mode superblock differs from the"
    echo "      single-process template-tier run:"
    cat target/table1-fleet-sb.err
    exit 1
}

echo "==> fault plane: 8-seed campaign is panic-free with no silent successes"
./target/release/fault_campaign --seeds 8 --jobs 2 --out target/faults-smoke.json || {
    echo "FAIL: fault campaign reported host panics or silent successes"
    exit 1
}
./target/release/fault_campaign --seeds 8 --jobs 2 --no-fast-path \
    --out target/faults-smoke-singlestep.json || {
    echo "FAIL: single-step fault campaign reported host panics or silent successes"
    exit 1
}
cmp target/faults-smoke.json target/faults-smoke-singlestep.json || {
    echo "FAIL: fault-campaign JSON diverges between the superblock machine and"
    echo "      the single-step reference interpreter (8-seed smoke)"
    exit 1
}
if ./target/release/fault_campaign --seeds 2 --jobs 2 --out /dev/null \
    --weaken-tag-clear > /dev/null 2>&1; then
    echo "FAIL: weakened tag clearing went undetected — the silent-success"
    echo "      oracle is broken (it must fail when corruption keeps its tag)"
    exit 1
fi
./target/release/fault_campaign --seeds 2 --dump-specs > target/faults-specs.lines
cmp scripts/golden/fault_campaign.specs target/faults-specs.lines || {
    echo "FAIL: fault campaign spec matrix differs from scripts/golden/fault_campaign.specs"
    echo "      (if intentional, regenerate the golden:"
    echo "       ./target/release/fault_campaign --seeds 2 --dump-specs \\"
    echo "           > scripts/golden/fault_campaign.specs)"
    exit 1
}

echo "==> oracle plane: pinned suites are byte-identical under --oracle replay"
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --jobs 2 --no-cache --oracle replay --shard 0/1 > target/table1-oracle-replay.lines
cmp target/table1-pinned.lines target/table1-oracle-replay.lines || {
    echo "FAIL: the fast machine and the reference interpreter disagree on the"
    echo "      table1 pinned suite (--oracle replay changed the output)"
    exit 1
}
./target/release/run_specs --specs scripts/golden/table3_pinned.specs \
    --jobs 2 --no-cache --oracle replay --shard 0/1 > target/table3-oracle-replay.lines
cmp target/table3-pinned.lines target/table3-oracle-replay.lines || {
    echo "FAIL: the fast machine and the reference interpreter disagree on the"
    echo "      table3 pinned suite (--oracle replay changed the output)"
    exit 1
}

echo "==> oracle plane: pinned suites are byte-identical under --oracle lockstep"
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --jobs 2 --no-cache --oracle lockstep --shard 0/1 > target/table1-oracle-lockstep.lines
cmp target/table1-pinned.lines target/table1-oracle-lockstep.lines || {
    echo "FAIL: the per-step lockstep shadow diverged (or perturbed guest metrics)"
    echo "      on the table1 pinned suite"
    exit 1
}
./target/release/run_specs --specs scripts/golden/table3_pinned.specs \
    --jobs 2 --no-cache --oracle lockstep --shard 0/1 > target/table3-oracle-lockstep.lines
cmp target/table3-pinned.lines target/table3-oracle-lockstep.lines || {
    echo "FAIL: the per-step lockstep shadow diverged (or perturbed guest metrics)"
    echo "      on the table3 pinned suite"
    exit 1
}

echo "==> oracle plane: 8-seed fault campaign is divergence-free under lockstep"
./target/release/fault_campaign --seeds 8 --jobs 2 --no-cache --oracle lockstep \
    --out target/faults-oracle.json || {
    echo "FAIL: the lockstep oracle reported divergences (or the campaign broke)"
    echo "      over the 8-seed fault sweep"
    exit 1
}

echo "==> oracle plane: fixed-seed prop_oracle fuzz is clean, and catches --weaken-sem"
./target/release/prop_oracle --cases 64 --seed 7 || {
    echo "FAIL: property fuzz found an oracle divergence or a monotonicity break"
    exit 1
}
if ./target/release/prop_oracle --cases 64 --seed 7 --weaken-sem > /dev/null 2>&1; then
    echo "FAIL: weakened csetbounds semantics went undetected — the differential"
    echo "      oracle is broken (it must diverge when the bounds clamp is off)"
    exit 1
fi

echo "==> oracle plane: sampled lockstep (--oracle-every 64) matches the plain run"
./target/release/run_specs --specs scripts/golden/table1_pinned.specs \
    --jobs 2 --no-cache --oracle lockstep --oracle-every 64 --shard 0/1 \
    > target/table1-oracle-sampled.lines
cmp target/table1-pinned.lines target/table1-oracle-sampled.lines || {
    echo "FAIL: sampled lockstep perturbed guest metrics (or diverged) on the"
    echo "      table1 pinned suite (--oracle-every must be observation-only)"
    exit 1
}

echo "==> attack plane: spec matrix is byte-identical to the committed golden"
./target/release/table_attacks --dump-specs > target/attacks-specs.lines
cmp scripts/golden/table_attacks.specs target/attacks-specs.lines || {
    echo "FAIL: attack spec matrix differs from scripts/golden/table_attacks.specs"
    echo "      (if intentional, regenerate the specs AND the golden:"
    echo "       ./target/release/table_attacks --dump-specs > scripts/golden/table_attacks.specs"
    echo "       ./target/release/table_attacks --jobs 2 --json > scripts/golden/table_attacks.golden)"
    exit 1
}

echo "==> attack plane: verdict table is byte-identical to the committed golden"
./target/release/table_attacks --jobs 2 --json > target/attacks.lines || {
    echo "FAIL: table_attacks self-enforcement tripped (a family escaped the"
    echo "      hardened membrane, nothing escaped mips64, or a cell lost its verdict)"
    exit 1
}
cmp scripts/golden/table_attacks.golden target/attacks.lines || {
    echo "FAIL: attack verdicts differ from scripts/golden/table_attacks.golden"
    echo "      (a containment outcome or evidence counter changed; if intentional:"
    echo "       ./target/release/table_attacks --jobs 2 --json > scripts/golden/table_attacks.golden)"
    exit 1
}

echo "==> attack plane: weakened quarantine MUST let reuse-based UAF escape"
if ./target/release/table_attacks --jobs 2 --weaken-quarantine > /dev/null 2>&1; then
    echo "FAIL: --weaken-quarantine went undetected — the hardened membrane's"
    echo "      self-enforcement is broken (disabling quarantine must re-open UAF)"
    exit 1
fi

echo "==> attack plane: hardened verdicts are divergence-free under lockstep"
./target/release/table_attacks --jobs 2 --json --oracle lockstep \
    > target/attacks-lockstep.lines || {
    echo "FAIL: the lockstep oracle reported divergences over the attack table"
    exit 1
}
cmp scripts/golden/table_attacks.golden target/attacks-lockstep.lines || {
    echo "FAIL: attack verdicts change under the lockstep oracle"
    exit 1
}

echo "==> attack plane: hardened 8-seed fault campaign is clean under lockstep"
./target/release/fault_campaign --seeds 8 --jobs 2 --no-cache --hardened \
    --oracle lockstep --out target/faults-hardened.json || {
    echo "FAIL: the hardened membrane broke the fault campaign (host panics,"
    echo "      silent successes, or lockstep divergences under --hardened)"
    exit 1
}

echo "==> scenario plane: pinned table_server grid is byte-identical to the golden"
./target/release/run_specs --specs scripts/golden/scenario_pinned.specs \
    --jobs 2 --no-cache --shard 0/1 > target/scenario-pinned.lines
cmp scripts/golden/scenario_pinned.golden target/scenario-pinned.lines || {
    echo "FAIL: scenario output differs from scripts/golden/scenario_pinned.golden"
    echo "      (latency percentiles or scheduling changed; if intentional, regenerate:"
    echo "       ./target/release/run_specs --specs scripts/golden/scenario_pinned.specs \\"
    echo "           --jobs 2 --no-cache --shard 0/1 > scripts/golden/scenario_pinned.golden)"
    exit 1
}
./target/release/run_specs --specs scripts/golden/scenario_pinned.specs \
    --jobs 2 --no-cache --no-fast-path --shard 0/1 > target/scenario-singlestep.lines
cmp target/scenario-pinned.lines target/scenario-singlestep.lines || {
    echo "FAIL: scenario latency percentiles diverge between the superblock"
    echo "      machine and the single-step reference interpreter"
    exit 1
}
./target/release/table_server --dump-specs > target/scenario-specs.lines
cmp scripts/golden/scenario_pinned.specs target/scenario-specs.lines || {
    echo "FAIL: table_server spec grid differs from scripts/golden/scenario_pinned.specs"
    echo "      (if intentional, regenerate the specs AND the golden:"
    echo "       ./target/release/table_server --dump-specs > scripts/golden/scenario_pinned.specs)"
    exit 1
}

echo "==> golden: fig4 sampled sub-grid is byte-identical to the committed golden"
./target/release/run_specs --specs scripts/golden/fig4_pinned.specs \
    --jobs 2 --no-cache --shard 0/1 > target/fig4-pinned.lines
cmp scripts/golden/fig4_pinned.golden target/fig4-pinned.lines || {
    echo "FAIL: fig4 sampled output differs from scripts/golden/fig4_pinned.golden"
    echo "      (workload metrics changed; if intentional, regenerate the sample:"
    echo "       ./target/release/fig4 --dump-specs | awk 'NR % 9 == 1' \\"
    echo "           > scripts/golden/fig4_pinned.specs"
    echo "       ./target/release/run_specs --specs scripts/golden/fig4_pinned.specs \\"
    echo "           --jobs 2 --no-cache --shard 0/1 > scripts/golden/fig4_pinned.golden)"
    exit 1
}

echo "==> golden: fig5 capability CDF is byte-identical to the committed golden"
./target/release/fig5 --jobs 1 --json > target/fig5.lines
cmp scripts/golden/fig5.golden target/fig5.lines || {
    echo "FAIL: fig5 capability-size CDF differs from scripts/golden/fig5.golden"
    echo "      (derivation tracing changed; if intentional, regenerate:"
    echo "       ./target/release/fig5 --jobs 1 --json > scripts/golden/fig5.golden)"
    exit 1
}

echo "==> fleet: chaos sweep (worker kills + garbage lines) merges byte-identically"
rm -rf target/fleet-ckpt
./target/release/fleet_run --specs scripts/golden/table1_pinned.specs \
    --workers 3 --unit-size 2 --chaos 7 \
    > target/fleet-chaos.lines 2> target/fleet-chaos.err
cmp target/table1-pinned.lines target/fleet-chaos.lines || {
    echo "FAIL: fleet_run --chaos output differs from the single-process run"
    echo "      (a recovery path corrupted the merge):"
    cat target/fleet-chaos.err
    exit 1
}
chaos_kills=$(sed -n 's/.*chaos_kills=\([0-9]*\).*/\1/p' target/fleet-chaos.err)
chaos_garbage=$(sed -n 's/.*chaos_garbage=\([0-9]*\).*/\1/p' target/fleet-chaos.err)
[ "${chaos_kills:-0}" -gt 0 ] && [ "${chaos_garbage:-0}" -gt 0 ] || {
    echo "FAIL: chaos seed 7 injected no worker kill or no garbage line —"
    echo "      the gate proved nothing. Summary was:"
    cat target/fleet-chaos.err
    exit 1
}

echo "==> fleet: resume redoes zero completed units and stays byte-identical"
rm -rf target/fleet-ckpt
if ./target/release/fleet_run --specs scripts/golden/table1_pinned.specs \
    --workers 1 --unit-size 2 --stop-after 3 \
    > /dev/null 2> target/fleet-interrupt.err; then
    echo "FAIL: an interrupted fleet sweep (--stop-after) must exit non-zero"
    exit 1
fi
completed=$(sed -n 's/.* completed=\([0-9]*\).*/\1/p' target/fleet-interrupt.err)
./target/release/fleet_run --specs scripts/golden/table1_pinned.specs \
    --workers 3 --unit-size 2 --resume \
    > target/fleet-resume.lines 2> target/fleet-resume.err
cmp target/table1-pinned.lines target/fleet-resume.lines || {
    echo "FAIL: resumed fleet output differs from the single-process run"
    cat target/fleet-resume.err
    exit 1
}
resumed=$(sed -n 's/.*resumed=\([0-9]*\).*/\1/p' target/fleet-resume.err)
[ "${completed:-0}" -gt 0 ] && [ "${resumed:-x}" = "${completed:-y}" ] || {
    echo "FAIL: the resumed sweep redid checkpointed units"
    echo "      (interrupted run completed ${completed:-?}, resume loaded ${resumed:-?}):"
    cat target/fleet-interrupt.err target/fleet-resume.err
    exit 1
}

echo "==> fleet: one torn spec line is skipped and counted, not fatal"
{
    head -3 scripts/golden/table1_pinned.specs
    echo '{"torn json'
} > target/fleet-torn.specs
./target/release/run_specs --specs target/fleet-torn.specs \
    --jobs 1 --no-cache --shard 0/1 \
    > target/fleet-torn.lines 2> target/fleet-torn.err || {
    echo "FAIL: run_specs aborted on a single malformed spec line"
    cat target/fleet-torn.err
    exit 1
}
grep -q "specs_rejected=1" target/fleet-torn.err || {
    echo "FAIL: the malformed spec line was not counted in specs_rejected"
    cat target/fleet-torn.err
    exit 1
}
[ "$(wc -l < target/fleet-torn.lines)" = "3" ] || {
    echo "FAIL: expected the 3 good specs to run despite the torn line"
    exit 1
}
if printf '{all bad\n' | ./target/release/run_specs --specs - > /dev/null 2>&1; then
    echo "FAIL: an all-malformed spec list must still exit non-zero"
    exit 1
fi

echo "CI: all gates passed"
