//! The simulated CHERI-MIPS instruction set.

use crate::{CReg, IReg};

/// Access width of a scalar load or store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl Width {
    /// Size of the access in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::H => 2,
            Width::W => 4,
            Width::D => 8,
        }
    }
}

/// One machine instruction.
///
/// The set is CHERI-MIPS-flavoured: a 64-bit MIPS-like integer core whose
/// *legacy* loads, stores and jumps are checked against **DDC** (so they all
/// trap once CheriABI installs a NULL DDC), plus the capability register
/// file and manipulation instructions of §2. Branch/jump targets are
/// *instruction indices* within the enclosing object's code segment,
/// resolved by the [`crate::Assembler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow MIPS conventions: rd/cd dest, rs/rt/cb/ct sources
pub enum Instr {
    // ---- constants and moves ----
    /// Load a 64-bit immediate (macro-expanded `lui`/`ori` chain on real
    /// hardware; 1 instruction here for both ABIs, so it cancels out).
    Li {
        rd: IReg,
        imm: i64,
    },
    Move {
        rd: IReg,
        rs: IReg,
    },

    // ---- three-register ALU ----
    Add {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Sub {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Mul {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    DivU {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    DivS {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    RemU {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    And {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Or {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Xor {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Nor {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Sllv {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Srlv {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Srav {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Slt {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },
    Sltu {
        rd: IReg,
        rs: IReg,
        rt: IReg,
    },

    // ---- immediate ALU ----
    AddI {
        rd: IReg,
        rs: IReg,
        imm: i64,
    },
    AndI {
        rd: IReg,
        rs: IReg,
        imm: u64,
    },
    OrI {
        rd: IReg,
        rs: IReg,
        imm: u64,
    },
    XorI {
        rd: IReg,
        rs: IReg,
        imm: u64,
    },
    SllI {
        rd: IReg,
        rs: IReg,
        sh: u8,
    },
    SrlI {
        rd: IReg,
        rs: IReg,
        sh: u8,
    },
    SraI {
        rd: IReg,
        rs: IReg,
        sh: u8,
    },
    SltI {
        rd: IReg,
        rs: IReg,
        imm: i64,
    },
    SltuI {
        rd: IReg,
        rs: IReg,
        imm: u64,
    },

    // ---- control flow ----
    Beq {
        rs: IReg,
        rt: IReg,
        target: u32,
    },
    Bne {
        rs: IReg,
        rt: IReg,
        target: u32,
    },
    Blez {
        rs: IReg,
        target: u32,
    },
    Bgtz {
        rs: IReg,
        target: u32,
    },
    Bltz {
        rs: IReg,
        target: u32,
    },
    Bgez {
        rs: IReg,
        target: u32,
    },
    J {
        target: u32,
    },
    /// Call within the current object (PC-relative; legal under a bounded
    /// PCC in both ABIs). Stores the return continuation in `$ra` (legacy)
    /// or `$cra` (CheriABI) according to the process ABI.
    Jal {
        target: u32,
    },
    Jr {
        rs: IReg,
    },
    Jalr {
        rd: IReg,
        rs: IReg,
    },
    Syscall,
    Break,
    Nop,

    // ---- legacy (DDC-relative) memory ----
    Load {
        rd: IReg,
        base: IReg,
        off: i32,
        w: Width,
        signed: bool,
    },
    Store {
        rs: IReg,
        base: IReg,
        off: i32,
        w: Width,
    },

    // ---- capability-relative memory ----
    CLoad {
        rd: IReg,
        cb: CReg,
        off: i32,
        w: Width,
        signed: bool,
    },
    CStore {
        rs: IReg,
        cb: CReg,
        off: i32,
        w: Width,
    },
    /// Capability load (CLC). The hardware immediate field is narrow; see
    /// [`crate::codegen::CodegenOpts::clc_large_imm`] for the paper's
    /// large-immediate extension, modelled at code generation time.
    Clc {
        cd: CReg,
        cb: CReg,
        off: i32,
    },
    /// Capability store (CSC).
    Csc {
        cs: CReg,
        cb: CReg,
        off: i32,
    },

    // ---- capability inspection ----
    CGetAddr {
        rd: IReg,
        cb: CReg,
    },
    CGetBase {
        rd: IReg,
        cb: CReg,
    },
    CGetLen {
        rd: IReg,
        cb: CReg,
    },
    CGetPerm {
        rd: IReg,
        cb: CReg,
    },
    CGetTag {
        rd: IReg,
        cb: CReg,
    },
    CGetOffset {
        rd: IReg,
        cb: CReg,
    },
    CGetType {
        rd: IReg,
        cb: CReg,
    },

    // ---- capability manipulation (monotonic) ----
    CSetAddr {
        cd: CReg,
        cb: CReg,
        rs: IReg,
    },
    CIncOffset {
        cd: CReg,
        cb: CReg,
        rs: IReg,
    },
    CIncOffsetImm {
        cd: CReg,
        cb: CReg,
        imm: i64,
    },
    CSetBounds {
        cd: CReg,
        cb: CReg,
        rs: IReg,
    },
    CSetBoundsImm {
        cd: CReg,
        cb: CReg,
        imm: u64,
    },
    CSetBoundsExact {
        cd: CReg,
        cb: CReg,
        rs: IReg,
    },
    CAndPerm {
        cd: CReg,
        cb: CReg,
        rs: IReg,
    },
    CClearTag {
        cd: CReg,
        cb: CReg,
    },
    CMove {
        cd: CReg,
        cb: CReg,
    },
    /// CRepresentableLength: round a length up for exact bounds (CRRL).
    CRrl {
        rd: IReg,
        rs: IReg,
    },
    /// CRepresentableAlignmentMask (CRAM).
    CRam {
        rd: IReg,
        rs: IReg,
    },
    CSub {
        rd: IReg,
        cb: CReg,
        ct: CReg,
    },
    /// Construct a capability from `cb` with address `rs`; `rs == 0` yields
    /// NULL (the C `(void *)(intptr_t)x` idiom).
    CFromPtr {
        cd: CReg,
        cb: CReg,
        rs: IReg,
    },
    /// Extract an address relative to `ct`'s base; NULL cap gives 0.
    CToPtr {
        rd: IReg,
        cb: CReg,
        ct: CReg,
    },
    CSeal {
        cd: CReg,
        cs: CReg,
        ct: CReg,
    },
    CUnseal {
        cd: CReg,
        cs: CReg,
        ct: CReg,
    },
    CTestSubset {
        rd: IReg,
        cb: CReg,
        ct: CReg,
    },

    // ---- capability control flow ----
    CJr {
        cb: CReg,
    },
    CJalr {
        cd: CReg,
        cb: CReg,
    },
    CGetPcc {
        cd: CReg,
    },
    /// Read DDC (unprivileged, as via CReadHwr on CHERI-MIPS).
    CGetDdc {
        cd: CReg,
    },
}

impl Instr {
    /// Base pipeline cost in cycles, before memory-system stalls: the
    /// in-order single-issue model of the paper's FPGA core.
    #[must_use]
    pub fn base_cycles(&self) -> u64 {
        match self {
            Instr::Mul { .. } => 3,
            Instr::DivU { .. } | Instr::DivS { .. } | Instr::RemU { .. } => 20,
            Instr::Syscall => 1,
            _ => 1,
        }
    }

    /// Whether this instruction performs a data-memory access.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::CLoad { .. }
                | Instr::CStore { .. }
                | Instr::Clc { .. }
                | Instr::Csc { .. }
        )
    }

    /// Whether this instruction may transfer control (branches, jumps,
    /// traps into the kernel). Superblock formation treats these as
    /// terminators: a straight-line run never continues past one.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blez { .. }
                | Instr::Bgtz { .. }
                | Instr::Bltz { .. }
                | Instr::Bgez { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Jalr { .. }
                | Instr::Syscall
                | Instr::Break
                | Instr::CJr { .. }
                | Instr::CJalr { .. }
        )
    }

    /// Static branch target (an instruction index within the enclosing
    /// object), when the instruction encodes one. Register-indirect jumps
    /// return `None`; their targets are still block leaders because the
    /// jump itself terminates its block.
    #[must_use]
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Beq { target, .. }
            | Instr::Bne { target, .. }
            | Instr::Blez { target, .. }
            | Instr::Bgtz { target, .. }
            | Instr::Bltz { target, .. }
            | Instr::Bgez { target, .. }
            | Instr::J { target }
            | Instr::Jal { target } => Some(*target),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{creg, ireg};

    #[test]
    fn widths() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::D.bytes(), 8);
    }

    #[test]
    fn cost_model_orders_instructions() {
        let add = Instr::Add {
            rd: ireg::V0,
            rs: ireg::A0,
            rt: ireg::A1,
        };
        let mul = Instr::Mul {
            rd: ireg::V0,
            rs: ireg::A0,
            rt: ireg::A1,
        };
        let div = Instr::DivU {
            rd: ireg::V0,
            rs: ireg::A0,
            rt: ireg::A1,
        };
        assert!(add.base_cycles() < mul.base_cycles());
        assert!(mul.base_cycles() < div.base_cycles());
    }

    #[test]
    fn control_classification_and_targets() {
        assert!(Instr::Beq {
            rs: ireg::V0,
            rt: ireg::V1,
            target: 7
        }
        .is_control());
        assert!(Instr::Syscall.is_control());
        assert!(Instr::CJr { cb: creg::CRA }.is_control());
        assert!(!Instr::Nop.is_control());
        assert_eq!(
            Instr::Bne {
                rs: ireg::V0,
                rt: ireg::V1,
                target: 9
            }
            .branch_target(),
            Some(9)
        );
        assert_eq!(Instr::Jal { target: 3 }.branch_target(), Some(3));
        assert_eq!(Instr::Jr { rs: ireg::RA }.branch_target(), None);
        assert_eq!(Instr::Nop.branch_target(), None);
    }

    #[test]
    fn memory_classification() {
        assert!(Instr::Clc {
            cd: creg::C3,
            cb: creg::CGP,
            off: 0
        }
        .is_memory());
        assert!(!Instr::CMove {
            cd: creg::C3,
            cb: creg::CGP
        }
        .is_memory());
    }
}
