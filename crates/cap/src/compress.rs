//! CHERI-Concentrate-style bounds compression for the 128-bit format.
//!
//! The 128-bit capability format cannot store two full 64-bit bounds plus an
//! address; instead it stores an exponent `E` and two truncated mantissas of
//! [`MANTISSA_WIDTH`] bits. The consequences modelled here are exactly those
//! the paper leans on (§2 footnote 2):
//!
//! * bounds of large regions are **rounded** — base down, top up — to
//!   multiples of `2^E`;
//! * allocators must **pad and align** allocations so that rounded bounds do
//!   not leak neighbouring memory ([`representable_length`] /
//!   [`representable_alignment_mask`] are the `CRRL`/`CRAM` instructions
//!   CheriBSD's jemalloc uses for this);
//! * a capability's address may roam only a bounded distance outside its
//!   bounds (the *representable window*) before the tag is lost.
//!
//! The 256-bit format stores bounds exactly and has none of these effects.

/// Number of mantissa bits available for each bound in the 128-bit format.
pub const MANTISSA_WIDTH: u32 = 14;

/// One plus the largest address: the top of a maximally wide capability.
pub const ADDRESS_SPACE_TOP: u128 = 1u128 << 64;

/// Smallest exponent `E` such that a region of `len` bytes *could* be encoded
/// (ignoring alignment of its actual bounds).
#[must_use]
pub fn exponent_for_length(len: u64) -> u32 {
    let mut e = 0;
    while (len >> e) >= (1u64 << MANTISSA_WIDTH) {
        e += 1;
    }
    e
}

/// Rounds `(base, base + len)` outward to the nearest bounds representable in
/// the compressed encoding. Returns `(decoded_base, decoded_top, exponent)`.
///
/// The result always covers the requested region and never exceeds the
/// address space.
#[must_use]
pub fn round_bounds(base: u64, len: u64) -> (u64, u128, u32) {
    let top = base as u128 + len as u128;
    debug_assert!(top <= ADDRESS_SPACE_TOP);
    let mut e = exponent_for_length(len);
    loop {
        let align = 1u128 << e;
        let b = (base as u128) & !(align - 1);
        let t = top
            .checked_add(align - 1)
            .map(|x| x & !(align - 1))
            .unwrap_or(ADDRESS_SPACE_TOP);
        let t = t.min(ADDRESS_SPACE_TOP);
        if ((t - b) >> e) < (1u128 << MANTISSA_WIDTH) {
            return (b as u64, t, e);
        }
        e += 1;
    }
}

/// `true` if the exact bounds `[base, base + len)` survive compression
/// unchanged.
#[must_use]
pub fn is_exactly_representable(base: u64, len: u64) -> bool {
    let (b, t, _) = round_bounds(base, len);
    b == base && t == base as u128 + len as u128
}

/// CRRL: the representable length — the smallest length `>= len` such that a
/// suitably aligned region of that length is exactly representable.
///
/// ```
/// use cheri_cap::compress::representable_length;
/// assert_eq!(representable_length(100), 100);         // small: exact
/// let big = (1 << 20) + 1;
/// let rounded = representable_length(big);
/// assert!(rounded >= big);
/// assert_eq!(representable_length(rounded), rounded); // idempotent
/// ```
#[must_use]
pub fn representable_length(len: u64) -> u64 {
    let mut l = len;
    loop {
        let e = exponent_for_length(l);
        if e == 0 {
            return l;
        }
        let align = 1u64 << e;
        let rounded = match l.checked_add(align - 1) {
            Some(x) => x & !(align - 1),
            // Lengths within `align` of 2^64: the only representable cover is
            // the full address space, whose length does not fit in u64; we
            // saturate to the largest aligned length below 2^64.
            None => !(align - 1),
        };
        if rounded == l {
            return l;
        }
        l = rounded;
    }
}

/// CRAM: alignment mask required for a region of `len` bytes to be exactly
/// representable. A base address must satisfy `base & !mask == 0`... i.e.
/// `base & mask == base`.
#[must_use]
pub fn representable_alignment_mask(len: u64) -> u64 {
    let e = exponent_for_length(representable_length(len));
    !((1u64 << e) - 1)
}

/// The representable address window for decoded bounds `(base, top)` encoded
/// with exponent `e`: addresses inside the window keep the tag when installed
/// with `CSetAddr`/`CIncOffset`; outside it the tag is lost.
///
/// Modelled as `base - S .. top + S` with `S = 2^(e + MANTISSA_WIDTH - 2)`,
/// one quarter of the encodable space, matching CHERI Concentrate's choice of
/// placing the bounds in the middle half of the encodable region.
#[must_use]
pub fn representable_window(base: u64, top: u128, e: u32) -> (u64, u128) {
    let shift = e + MANTISSA_WIDTH - 2;
    if shift >= 64 {
        return (0, ADDRESS_SPACE_TOP);
    }
    let slack = 1u128 << shift;
    let lo = (base as u128).saturating_sub(slack) as u64;
    let hi = (top + slack).min(ADDRESS_SPACE_TOP);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_regions_are_exact() {
        for len in [0u64, 1, 7, 64, 4096, (1 << MANTISSA_WIDTH) - 1] {
            for base in [0u64, 3, 0x1234, u64::MAX - len] {
                assert!(
                    is_exactly_representable(base, len),
                    "base={base:#x} len={len:#x}"
                );
            }
        }
    }

    #[test]
    fn exponent_grows_with_length() {
        assert_eq!(exponent_for_length(0), 0);
        assert_eq!(exponent_for_length((1 << MANTISSA_WIDTH) - 1), 0);
        assert_eq!(exponent_for_length(1 << MANTISSA_WIDTH), 1);
        assert!(exponent_for_length(u64::MAX) > 40);
    }

    #[test]
    fn rounding_covers_request() {
        let cases = [
            (0x1000u64, 1u64 << 20),
            (0x1001, 1 << 20),
            (0xdead_beef, 0x1234_5678),
            (0, u64::MAX),
            (u64::MAX - 0x10000, 0x10000),
        ];
        for (base, len) in cases {
            let (b, t, _) = round_bounds(base, len);
            assert!(b <= base);
            assert!(t >= base as u128 + len as u128);
            assert!(t <= ADDRESS_SPACE_TOP);
        }
    }

    #[test]
    fn misaligned_large_region_rounds() {
        let base = 0x1001;
        let len = 1 << 20;
        assert!(!is_exactly_representable(base, len));
        let (b, t, e) = round_bounds(base, len);
        assert!(e > 0);
        assert_eq!(b % (1 << e), 0);
        assert_eq!(t % (1 << e), 0);
    }

    #[test]
    fn crrl_idempotent_and_padded_alloc_is_exact() {
        for len in [1u64, 100, 1 << 14, (1 << 20) + 3, (1 << 33) + 12345] {
            let l = representable_length(len);
            assert!(l >= len);
            assert_eq!(representable_length(l), l);
            let mask = representable_alignment_mask(len);
            let base = 0x4000_0000u64 & mask;
            assert!(
                is_exactly_representable(base, l),
                "len={len} l={l} mask={mask:#x}"
            );
        }
    }

    #[test]
    fn full_address_space_representable() {
        let (b, t, _) = round_bounds(0, u64::MAX);
        assert_eq!(b, 0);
        assert_eq!(t, ADDRESS_SPACE_TOP);
    }

    #[test]
    fn window_contains_bounds() {
        let (b, t, e) = round_bounds(0x10000, 1 << 20);
        let (lo, hi) = representable_window(b, t, e);
        assert!(lo <= b);
        assert!(hi >= t);
    }

    #[test]
    fn window_is_finite_for_small_caps() {
        let (b, t, e) = round_bounds(0x10000, 64);
        let (lo, hi) = representable_window(b, t, e);
        assert_eq!(e, 0);
        assert_eq!(lo, 0x10000 - (1 << (MANTISSA_WIDTH - 2)));
        assert_eq!(hi, (0x10000 + 64 + (1 << (MANTISSA_WIDTH - 2))) as u128);
    }
}
