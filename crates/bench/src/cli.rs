//! Shared command-line handling for the evaluation binaries.
//!
//! Every table/figure binary accepts the same flags:
//!
//! * `--jobs N` — number of harness workers (default: all available
//!   cores). Results are identical at any level; `--jobs 1` is the exact
//!   sequential path.
//! * `--json` — emit one machine-readable JSON line per result row
//!   instead of the human-readable table.
//! * `--cache` / `--no-cache` — serve unchanged cases from the
//!   content-addressed report cache under `target/harness-cache/`
//!   (default: off). Hit/miss counts go to stderr so cached and uncached
//!   runs produce byte-identical stdout.
//! * `--shard I/N` — execute only submission indices `i ≡ I (mod N)` and
//!   print one deterministic per-case JSON line per owned index instead
//!   of the aggregate. Sorting the concatenated lines of all `N` shards
//!   by their `"case"` field reproduces `--shard 0/1` byte for byte.
//! * `--progress` — progress line (cases completed / total, ETA) on
//!   stderr, composing with any stdout mode.
//! * `--json-stream` — emit each case report as it completes (completion
//!   order, tagged with its submission index) ahead of the ordered
//!   aggregate.

use cheriabi::cache::ReportCache;
use cheriabi::harness::{
    CaseReport, ExecMode, Harness, MembraneMode, OracleMode, RunSpec, SessionOpts, Shard,
};
use cheriabi::spec::Registry;
use std::fmt::Write as _;

/// Parsed common options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchOpts {
    /// Harness worker count.
    pub jobs: usize,
    /// Emit JSON report lines instead of the human table.
    pub json: bool,
    /// Serve and record case reports through the content-addressed cache.
    pub cache: bool,
    /// Execute (and print) only this shard's submission indices.
    pub shard: Option<Shard>,
    /// Write a progress line to stderr.
    pub progress: bool,
    /// Emit each case report as it completes.
    pub json_stream: bool,
    /// After the session, prune the report cache down to this many bytes
    /// (LRU by mtime; never evicts entries this session just wrote).
    pub cache_limit: Option<u64>,
    /// Print the session's spec list as JSON lines and exit instead of
    /// running anything (feed the output to `run_specs --specs`).
    pub dump_specs: bool,
    /// Re-run panicked / deadline-exceeded cases up to this many times
    /// with deterministic backoff before accepting the outcome.
    pub retries: u64,
    /// Execution tier for every case (`--exec-mode
    /// single|superblock|template`, default template — the full stack).
    /// `--no-fast-path` is a legacy alias for `--exec-mode single`, the
    /// guest-metric equivalence gate; mixing the alias with the explicit
    /// flag is rejected at parse time.
    pub exec_mode: ExecMode,
    /// Test-only: drop one compiled template's exit register flush
    /// (`--weaken-flush`) so the cross-tier gates can prove a residency
    /// bug is detected. Weakened runs never touch the report cache.
    pub weaken_flush: bool,
    /// Differential-oracle mode applied to every spec (`--oracle
    /// lockstep|replay|off`). A divergence surfaces as a failed case.
    pub oracle: OracleMode,
    /// Test-only: weaken the fast machine's `csetbounds` semantics
    /// (`--weaken-sem`) so the oracle self-test can prove a divergence is
    /// actually detected. Weakened runs never touch the report cache.
    pub weaken_sem: bool,
    /// Lockstep sampling cadence (`--oracle-every N`): shadow-check every
    /// Nth dispatched instruction instead of all of them. Never changes
    /// guest results or cache identity; 1 is full lockstep.
    pub oracle_every: u64,
    /// Run every case under the hardened membrane ABI (`--hardened`):
    /// quarantined frees, revocation sweeps and deterministic kernel-side
    /// repairs, with evidence counters on each report.
    pub hardened: bool,
    /// Dispatch the session through the fault-tolerant fleet coordinator
    /// with this many worker subprocesses (`--fleet N`). Workers are
    /// sibling `run_specs` processes; results merge byte-identically with
    /// the single-process run, and worker crashes/hangs/corrupt output are
    /// recovered, not fatal. `--retries` is forwarded to every worker (and
    /// the in-process fallback); `--shard`, `--cache`, `--cache-limit`,
    /// `--json-stream` and `--progress` are rejected rather than silently
    /// dropped.
    pub fleet: Option<usize>,
    /// Seeded coordinator-side fault injection for the fleet
    /// (`--chaos SEED`): deterministically kill workers mid-unit, delay
    /// their output, and insert garbage lines, proving the recovery paths
    /// in CI. Requires `--fleet`.
    pub chaos: Option<u64>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            jobs: cheriabi::harness::available_parallelism(),
            json: false,
            cache: false,
            shard: None,
            progress: false,
            json_stream: false,
            cache_limit: None,
            dump_specs: false,
            retries: 0,
            exec_mode: ExecMode::Template,
            weaken_flush: false,
            oracle: OracleMode::Off,
            weaken_sem: false,
            oracle_every: 1,
            hardened: false,
            fleet: None,
            chaos: None,
        }
    }
}

/// Parses the shared flags from an argument list (without the program
/// name). Returns an error message on anything unrecognised.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<BenchOpts, String> {
    let mut opts = BenchOpts::default();
    // `--exec-mode` and the legacy `--fast-path`/`--no-fast-path` aliases
    // must not mix: silently letting one win would make the command line
    // order-sensitive in a way nobody can audit.
    let mut exec_mode_flag = false;
    let mut legacy_fast_path_flag = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let value = iter.next().ok_or("--jobs needs a value")?;
                let jobs: usize = value
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {value}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = jobs;
            }
            "--json" => opts.json = true,
            "--cache" => opts.cache = true,
            "--no-cache" => opts.cache = false,
            "--shard" => {
                let value = iter.next().ok_or("--shard needs a value (I/N)")?;
                opts.shard = Some(Shard::parse(&value)?);
            }
            "--progress" => opts.progress = true,
            "--json-stream" => opts.json_stream = true,
            "--cache-limit" => {
                let value = iter.next().ok_or("--cache-limit needs a value (bytes)")?;
                let limit: u64 = value
                    .parse()
                    .map_err(|_| format!("--cache-limit: not a byte count: {value}"))?;
                opts.cache_limit = Some(limit);
            }
            "--dump-specs" => opts.dump_specs = true,
            "--no-fast-path" => {
                legacy_fast_path_flag = true;
                opts.exec_mode = ExecMode::SingleStep;
            }
            "--fast-path" => {
                legacy_fast_path_flag = true;
                opts.exec_mode = ExecMode::Template;
            }
            "--exec-mode" => {
                let value = iter
                    .next()
                    .ok_or("--exec-mode needs a tier (single|superblock|template)")?;
                exec_mode_flag = true;
                opts.exec_mode = ExecMode::from_label(&value).map_err(|e| {
                    format!("--exec-mode: {e} (want single, superblock or template)")
                })?;
            }
            "--weaken-flush" => opts.weaken_flush = true,
            "--oracle" => {
                let value = iter
                    .next()
                    .ok_or("--oracle needs a mode (lockstep|replay|off)")?;
                opts.oracle = match value.as_str() {
                    "lockstep" => OracleMode::Lockstep,
                    "replay" => OracleMode::Replay,
                    "off" => OracleMode::Off,
                    other => {
                        return Err(format!(
                            "--oracle: unknown mode `{other}` (want lockstep, replay or off)"
                        ))
                    }
                };
            }
            "--weaken-sem" => opts.weaken_sem = true,
            "--oracle-every" => {
                let value = iter.next().ok_or("--oracle-every needs a value")?;
                let every: u64 = value
                    .parse()
                    .map_err(|_| format!("--oracle-every: not a number: {value}"))?;
                if every == 0 {
                    return Err("--oracle-every must be at least 1".to_string());
                }
                opts.oracle_every = every;
            }
            "--hardened" => opts.hardened = true,
            "--fleet" => {
                let value = iter.next().ok_or("--fleet needs a worker count")?;
                let workers: usize = value
                    .parse()
                    .map_err(|_| format!("--fleet: not a number: {value}"))?;
                if workers == 0 {
                    return Err("--fleet must be at least 1".to_string());
                }
                opts.fleet = Some(workers);
            }
            "--chaos" => {
                let value = iter.next().ok_or("--chaos needs a seed")?;
                let seed: u64 = value
                    .parse()
                    .map_err(|_| format!("--chaos: not a seed: {value}"))?;
                opts.chaos = Some(seed);
            }
            "--retries" => {
                let value = iter.next().ok_or("--retries needs a value")?;
                let retries: u64 = value
                    .parse()
                    .map_err(|_| format!("--retries: not a number: {value}"))?;
                opts.retries = retries;
            }
            "--specs" => {
                return Err("--specs is only supported by the run_specs binary".to_string());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if exec_mode_flag && legacy_fast_path_flag {
        return Err(
            "--exec-mode cannot combine with --fast-path/--no-fast-path (the legacy \
             aliases name the same knob; pick one spelling)"
                .to_string(),
        );
    }
    if opts.weaken_flush && opts.exec_mode != ExecMode::Template {
        return Err(
            "--weaken-flush requires the template tier (drop --exec-mode/--no-fast-path)"
                .to_string(),
        );
    }
    if opts.fleet.is_some() {
        // A session flag the fleet cannot honour is an error, not a silent
        // drop: `--fleet` must never change what a command reports.
        // (`--retries` IS honoured — it is forwarded to every worker and
        // applied by the in-process fallback.)
        if opts.shard.is_some() {
            return Err(
                "--fleet cannot combine with --shard (shard first, then fleet each shard)"
                    .to_string(),
            );
        }
        if opts.cache || opts.cache_limit.is_some() {
            return Err(
                "--fleet cannot combine with --cache/--cache-limit (workers run uncached)"
                    .to_string(),
            );
        }
        if opts.json_stream {
            return Err(
                "--fleet cannot combine with --json-stream (units complete out of \
                        case order; use the merged output)"
                    .to_string(),
            );
        }
        if opts.progress {
            return Err(
                "--fleet cannot combine with --progress (watch the fleet summary on stderr \
                 instead)"
                    .to_string(),
            );
        }
    }
    if opts.chaos.is_some() && opts.fleet.is_none() {
        return Err("--chaos requires --fleet (or the fleet_run binary)".to_string());
    }
    Ok(opts)
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "options:\n  \
    --jobs N       harness workers (default: all cores)\n  \
    --json         machine-readable output, one JSON line per row\n  \
    --cache        serve unchanged cases from target/harness-cache/\n  \
    --no-cache     disable the report cache (the default)\n  \
    --shard I/N    run submission indices i % N == I; print per-case\n                 \
    JSON lines (sort all shards' lines by \"case\" to merge)\n  \
    --progress     progress line (completed/total, ETA) on stderr\n  \
    --json-stream  emit each case report as it completes\n  \
    --cache-limit B  after the session, prune the report cache to at most\n                 \
    B bytes (oldest entries first; never this session's own)\n  \
    --dump-specs   print the session's RunSpec JSON lines and exit\n                 \
    (pipe into `run_specs --specs -` to replay them)\n  \
    --retries N    re-run panicked / deadline-exceeded cases up to N times\n                 \
    (deterministic backoff; cache keys and entries are unaffected)\n  \
    --exec-mode T  execution tier for every case: `single` (the reference\n                 \
    interpreter), `superblock` (decoded regions, no templates)\n                 \
    or `template` (the full stack, the default). Guest metrics\n                 \
    are byte-identical by contract; only host speed changes\n  \
    --no-fast-path legacy alias for --exec-mode single (and --fast-path for\n                 \
    --exec-mode template); cannot mix with --exec-mode\n  \
    --weaken-flush test-only: drop one compiled template's exit register\n                 \
    flush so the cross-tier gates can prove a residency bug is\n                 \
    detected (template tier only; never cached)\n  \
    --oracle M     differential oracle: `lockstep` shadows every dispatched\n                 \
    instruction against the shared semantics, `replay` runs each\n                 \
    case twice (fast, then reference) and diffs the results;\n                 \
    a divergence surfaces as a failed case (default: off)\n  \
    --weaken-sem   test-only: weaken csetbounds in the fast machine so the\n                 \
    oracle self-test can prove divergences are detected\n                 \
    (never cached)\n  \
    --oracle-every N  lockstep sampling cadence: shadow-check every Nth\n                 \
    dispatched instruction (default 1 = all; guest results\n                 \
    and cache identity are unaffected)\n  \
    --hardened     run every case under the hardened membrane ABI:\n                 \
    quarantined frees, revocation sweeps and deterministic\n                 \
    kernel repairs, with evidence counters on each report\n  \
    --fleet N      dispatch the session through the fault-tolerant fleet\n                 \
    coordinator with N worker subprocesses (sibling run_specs\n                 \
    processes; crashes, hangs and corrupt output are recovered,\n                 \
    and the merge is byte-identical to a single-process run;\n                 \
    --retries is forwarded to workers, while --shard, --cache,\n                 \
    --cache-limit, --json-stream and --progress are rejected)\n  \
    --chaos SEED   seeded coordinator fault injection (kill a worker\n                 \
    mid-unit, delay output, insert a garbage line); needs --fleet";

/// Parses the process arguments; prints the usage text and exits 0 on
/// `--help`, exits 2 on anything unrecognised.
#[must_use]
pub fn parse_env() -> BenchOpts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Like [`parse_env`], but additionally accepts `--specs <path|->`: an
/// external `RunSpec` list (see [`read_specs`]) driven through the same
/// cache/shard session machinery. Only the `run_specs` binary takes it.
#[must_use]
pub fn parse_env_with_specs() -> (BenchOpts, Option<String>) {
    let mut rest = Vec::new();
    let mut specs = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--specs" {
            match args.next() {
                Some(value) => specs = Some(value),
                None => {
                    eprintln!("--specs needs a value (a path, or - for stdin)");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(arg);
        }
    }
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        println!(
            "  --specs P      read the RunSpec list from file P, or stdin with\n                 \
             `--specs -` (a JSON array, or one spec object per line)"
        );
        std::process::exit(0);
    }
    match parse_args(rest) {
        Ok(opts) => (opts, specs),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// A parsed spec list plus the malformed lines that were skipped.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecList {
    /// The specs that parsed, in input order.
    pub specs: Vec<RunSpec>,
    /// Malformed lines skipped (`specs_rejected` in the session summary).
    pub rejected: usize,
}

/// Reads a `RunSpec` list from `source`: a file path, or `-` for stdin.
/// Accepts either a top-level JSON array of spec objects or one spec
/// object per non-blank line (the `--dump-specs` format).
///
/// A malformed *line* is skipped and counted (with a warning on stderr),
/// not fatal: a fleet unit fed a list with one torn line still runs the
/// other cases. A malformed top-level *array* is still an error — torn
/// array syntax leaves no line boundaries to recover at.
///
/// # Errors
///
/// Returns a message on I/O failure, a malformed array document, an empty
/// list, or when *every* line is malformed.
pub fn read_specs(source: &str) -> Result<SpecList, String> {
    use std::io::Read as _;
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("reading {source}: {e}"))?
    };
    let mut specs = Vec::new();
    let mut rejected = 0usize;
    if text.trim_start().starts_with('[') {
        let doc = cheriabi::json::parse(&text).map_err(|e| format!("spec list: {e}"))?;
        let cheriabi::json::Json::Arr(items) = doc else {
            return Err("spec list: expected a JSON array".to_string());
        };
        for (i, item) in items.iter().enumerate() {
            specs.push(RunSpec::from_json(item).map_err(|e| format!("spec [{i}]: {e}"))?);
        }
    } else {
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = cheriabi::json::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|doc| RunSpec::from_json(&doc));
            match parsed {
                Ok(spec) => specs.push(spec),
                Err(e) => {
                    eprintln!("warning: skipping malformed spec line {}: {e}", lineno + 1);
                    rejected += 1;
                }
            }
        }
    }
    if specs.is_empty() {
        if rejected > 0 {
            return Err(format!(
                "all {rejected} spec lines in {source} are malformed"
            ));
        }
        return Err(format!("no specs found in {source}"));
    }
    Ok(SpecList { specs, rejected })
}

/// Runs one harness session over `specs` honouring every shared flag:
/// cache (with a hit/miss summary on stderr), shard, progress and the
/// JSON stream.
///
/// Returns the reports in submission order — or `None` in shard mode,
/// where the aggregate cannot be computed and the per-case deterministic
/// JSON lines have already been printed; the caller just returns.
#[must_use]
pub fn run_specs(
    registry: &Registry,
    specs: &[RunSpec],
    opts: &BenchOpts,
) -> Option<Vec<CaseReport>> {
    // `--exec-mode`, `--oracle`, `--oracle-every`, `--hardened`,
    // `--weaken-sem` and `--weaken-flush` rewrite every spec before
    // anything else sees it, so dumps, cache lookups, fleet workers and
    // execution all agree on the mode. The defaults leave specs untouched:
    // a spec that already opted into any of these stays opted in.
    let adjusted: Vec<RunSpec>;
    let specs: &[RunSpec] = if opts.exec_mode == ExecMode::Template
        && opts.oracle == OracleMode::Off
        && !opts.weaken_sem
        && !opts.weaken_flush
        && opts.oracle_every == 1
        && !opts.hardened
    {
        specs
    } else {
        adjusted = specs
            .iter()
            .map(|s| {
                let mut s = s.clone();
                if opts.exec_mode != ExecMode::Template {
                    s = s.with_exec_mode(opts.exec_mode);
                }
                if opts.weaken_flush {
                    s = s.with_weaken_flush(true);
                }
                if opts.oracle != OracleMode::Off {
                    s = s.with_oracle(opts.oracle);
                }
                if opts.weaken_sem {
                    s = s.with_weaken_sem(true);
                }
                if opts.oracle_every != 1 {
                    s = s.with_oracle_every(opts.oracle_every);
                }
                if opts.hardened {
                    s = s.with_abi_mode(MembraneMode::Hardened);
                }
                s
            })
            .collect();
        &adjusted
    };
    if opts.dump_specs {
        for spec in specs {
            println!("{}", spec.to_json());
        }
        return None;
    }
    if let Some(workers) = opts.fleet {
        return Some(run_fleet_session(registry, specs, workers, opts));
    }
    let cache = if opts.cache {
        // The salt covers codegen *and* runtime behaviour, so a kernel or
        // VM change invalidates cached reports just like a codegen change.
        match ReportCache::open_default(cheriabi::cache::session_salt()) {
            Ok(cache) => Some(cache),
            Err(err) => {
                eprintln!("warning: report cache unavailable ({err}); running uncached");
                None
            }
        }
    } else {
        None
    };
    let stream = |index: usize, report: &CaseReport, _cached: bool| {
        println!("{}", report.to_json_tagged(index));
    };
    let session = Harness::new(opts.jobs).run_session(
        registry,
        specs,
        &SessionOpts {
            cache: cache.as_ref(),
            shard: opts.shard,
            progress: opts.progress,
            on_report: if opts.json_stream {
                Some(&stream)
            } else {
                None
            },
            retries: opts.retries,
        },
    );
    if let Some(cache) = &cache {
        eprintln!(
            "cache: {} hits, {} misses ({})",
            session.cache_hits,
            session.cache_misses,
            cache.dir().display()
        );
        if let Some(limit) = opts.cache_limit {
            match cache.prune(limit) {
                Ok((removed, remaining)) => eprintln!(
                    "cache: pruned {removed} entries, {remaining} bytes remain (limit {limit})"
                ),
                Err(err) => eprintln!("warning: cache prune failed: {err}"),
            }
        }
    }
    if opts.shard.is_some() {
        for (index, report) in &session.reports {
            println!("{}", report.to_json_deterministic(*index));
        }
        return None;
    }
    Some(session.into_reports())
}

/// The canonical worker command for this process: the sibling `run_specs`
/// binary next to the current executable, if one exists. `None` (no
/// sibling — e.g. a test runner) makes the fleet run every unit
/// in-process, which is the coordinator's fully-degraded mode anyway.
#[must_use]
pub fn sibling_worker() -> Option<cheriabi::fleet::WorkerCmd> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("run_specs");
    candidate
        .is_file()
        .then(|| cheriabi::fleet::WorkerCmd::run_specs(candidate))
}

/// Dispatches `specs` through the fleet coordinator (`--fleet N`) and
/// decodes the merged deterministic lines back into reports, so the
/// calling table/figure binary aggregates exactly as it would have from an
/// in-process session. The fleet summary goes to stderr.
fn run_fleet_session(
    registry: &Registry,
    specs: &[RunSpec],
    workers: usize,
    opts: &BenchOpts,
) -> Vec<CaseReport> {
    let fleet_opts = cheriabi::fleet::FleetOpts {
        workers,
        chaos: opts.chaos,
        worker: sibling_worker(),
        // Session `--retries` must survive the fleet hop: the coordinator
        // forwards it to every worker and applies it on the in-process
        // fallback, so `table1 --retries 3 --fleet 2` reports the same
        // bytes as `table1 --retries 3`.
        case_retries: opts.retries,
        ..cheriabi::fleet::FleetOpts::default()
    };
    let out = cheriabi::fleet::run_fleet(registry, specs, &fleet_opts);
    eprintln!("{}", out.stats.summary_line());
    out.lines
        .iter()
        .map(|line| {
            // Fleet lines are validated on receipt; a decode failure here
            // is a coordinator bug, not worker behaviour.
            let doc = cheriabi::json::parse(line).expect("validated fleet line");
            CaseReport::from_json(&doc).expect("validated fleet report")
        })
        .collect()
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for a JSON line: finite values print plainly, the
/// rest (overheads can divide by zero misses) become `null`.
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_jobs_and_json() {
        let opts = parse_args(args(&["--jobs", "4", "--json"])).expect("parses");
        assert_eq!(opts.jobs, 4);
        assert!(opts.json);
        let defaults = parse_args(args(&[])).expect("parses");
        assert!(defaults.jobs >= 1);
        assert!(!defaults.json);
        assert!(!defaults.cache);
        assert_eq!(defaults.shard, None);
        assert!(!defaults.progress);
        assert!(!defaults.json_stream);
    }

    #[test]
    fn parses_session_flags() {
        let opts = parse_args(args(&[
            "--cache",
            "--shard",
            "1/4",
            "--progress",
            "--json-stream",
        ]))
        .expect("parses");
        assert!(opts.cache);
        assert_eq!(opts.shard, Some(Shard { index: 1, count: 4 }));
        assert!(opts.progress);
        assert!(opts.json_stream);
        // Last of --cache / --no-cache wins.
        let off = parse_args(args(&["--cache", "--no-cache"])).expect("parses");
        assert!(!off.cache);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(args(&["--jobs"])).is_err());
        assert!(parse_args(args(&["--jobs", "zero"])).is_err());
        assert!(parse_args(args(&["--jobs", "0"])).is_err());
        assert!(parse_args(args(&["--shard"])).is_err());
        assert!(parse_args(args(&["--shard", "2/2"])).is_err());
        assert!(parse_args(args(&["--shard", "nope"])).is_err());
        assert!(parse_args(args(&["--frobnicate"])).is_err());
        assert!(parse_args(args(&["--cache-limit"])).is_err());
        assert!(parse_args(args(&["--cache-limit", "lots"])).is_err());
        assert!(
            parse_args(args(&["--specs", "-"])).is_err(),
            "--specs belongs to run_specs only"
        );
    }

    #[test]
    fn parses_cache_limit_and_dump_specs() {
        let opts = parse_args(args(&["--cache-limit", "1048576", "--dump-specs"])).expect("parses");
        assert_eq!(opts.cache_limit, Some(1_048_576));
        assert!(opts.dump_specs);
        let defaults = parse_args(args(&[])).expect("parses");
        assert_eq!(defaults.cache_limit, None);
        assert!(!defaults.dump_specs);
    }

    #[test]
    fn parses_retries() {
        let opts = parse_args(args(&["--retries", "3"])).expect("parses");
        assert_eq!(opts.retries, 3);
        assert_eq!(parse_args(args(&[])).expect("parses").retries, 0);
        assert!(parse_args(args(&["--retries"])).is_err());
        assert!(parse_args(args(&["--retries", "many"])).is_err());
    }

    #[test]
    fn parses_exec_mode_and_legacy_aliases() {
        assert_eq!(
            parse_args(args(&[])).expect("parses").exec_mode,
            ExecMode::Template
        );
        for (flag, mode) in [
            ("single", ExecMode::SingleStep),
            ("superblock", ExecMode::Superblock),
            ("template", ExecMode::Template),
        ] {
            assert_eq!(
                parse_args(args(&["--exec-mode", flag]))
                    .expect("parses")
                    .exec_mode,
                mode
            );
        }
        assert!(parse_args(args(&["--exec-mode"])).is_err());
        assert!(parse_args(args(&["--exec-mode", "warp"])).is_err());
        // The legacy aliases still map onto the tiers; last toggle wins.
        assert_eq!(
            parse_args(args(&["--no-fast-path"]))
                .expect("parses")
                .exec_mode,
            ExecMode::SingleStep
        );
        assert_eq!(
            parse_args(args(&["--no-fast-path", "--fast-path"]))
                .expect("parses")
                .exec_mode,
            ExecMode::Template
        );
        // ... but mixing the alias with the explicit flag is ambiguous and
        // rejected regardless of order.
        assert!(parse_args(args(&["--exec-mode", "template", "--no-fast-path"])).is_err());
        assert!(parse_args(args(&["--no-fast-path", "--exec-mode", "single"])).is_err());
    }

    #[test]
    fn parses_weaken_flush() {
        assert!(!parse_args(args(&[])).expect("parses").weaken_flush);
        let opts = parse_args(args(&["--weaken-flush"])).expect("parses");
        assert!(opts.weaken_flush);
        assert_eq!(opts.exec_mode, ExecMode::Template);
        // The weakened flush lives in the template tier; asking for it on
        // another tier is a contradiction, not a no-op.
        assert!(parse_args(args(&["--weaken-flush", "--no-fast-path"])).is_err());
        assert!(parse_args(args(&["--exec-mode", "superblock", "--weaken-flush"])).is_err());
        // It forwards through --fleet like any spec rewrite.
        let fleet = parse_args(args(&["--fleet", "2", "--weaken-flush"])).expect("parses");
        assert!(fleet.weaken_flush);
    }

    #[test]
    fn parses_oracle_and_weaken_sem() {
        let defaults = parse_args(args(&[])).expect("parses");
        assert_eq!(defaults.oracle, OracleMode::Off);
        assert!(!defaults.weaken_sem);
        let opts = parse_args(args(&["--oracle", "lockstep", "--weaken-sem"])).expect("parses");
        assert_eq!(opts.oracle, OracleMode::Lockstep);
        assert!(opts.weaken_sem);
        assert_eq!(
            parse_args(args(&["--oracle", "replay"]))
                .expect("parses")
                .oracle,
            OracleMode::Replay
        );
        // Last --oracle wins, and `off` restores the default.
        assert_eq!(
            parse_args(args(&["--oracle", "lockstep", "--oracle", "off"]))
                .expect("parses")
                .oracle,
            OracleMode::Off
        );
        assert!(parse_args(args(&["--oracle"])).is_err());
        assert!(parse_args(args(&["--oracle", "sideways"])).is_err());
    }

    #[test]
    fn parses_oracle_every_and_hardened() {
        let defaults = parse_args(args(&[])).expect("parses");
        assert_eq!(defaults.oracle_every, 1);
        assert!(!defaults.hardened);
        let opts = parse_args(args(&["--oracle-every", "64", "--hardened"])).expect("parses");
        assert_eq!(opts.oracle_every, 64);
        assert!(opts.hardened);
        assert!(parse_args(args(&["--oracle-every"])).is_err());
        assert!(parse_args(args(&["--oracle-every", "0"])).is_err());
        assert!(parse_args(args(&["--oracle-every", "often"])).is_err());
    }

    #[test]
    fn read_specs_accepts_lines_and_arrays() {
        use cheri_isa::codegen::CodegenOpts;
        use cheri_kernel::AbiMode;
        use cheriabi::harness::RunSpec;
        use cheriabi::spec::ProgramSpec;
        let spec = RunSpec::new(
            "one",
            ProgramSpec::Exit { code: 3 },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        )
        .with_seed(7);
        let line = spec.to_json().to_string();
        let dir = std::env::temp_dir().join(format!(
            "cheri-bench-specs-{}-{}",
            std::process::id(),
            line.len()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let lines_path = dir.join("specs.jsonl");
        std::fs::write(&lines_path, format!("{line}\n\n{line}\n")).expect("write");
        let from_lines = read_specs(lines_path.to_str().expect("utf8 path")).expect("lines");
        assert_eq!(from_lines.specs.len(), 2);
        assert_eq!(from_lines.rejected, 0);
        assert_eq!(from_lines.specs[0], spec);
        let array_path = dir.join("specs.json");
        std::fs::write(&array_path, format!("[{line},\n {line}]")).expect("write");
        let from_array = read_specs(array_path.to_str().expect("utf8 path")).expect("array");
        assert_eq!(from_array, from_lines);
        assert!(read_specs(dir.join("missing.json").to_str().expect("utf8")).is_err());

        // Malformed lines are skipped and counted, not fatal: a fleet unit
        // fed one torn line still runs its other cases.
        let torn_path = dir.join("torn.jsonl");
        std::fs::write(
            &torn_path,
            format!("{line}\n{{\"torn\": \n{line}\nnot json at all\n"),
        )
        .expect("write");
        let lenient = read_specs(torn_path.to_str().expect("utf8 path")).expect("lenient");
        assert_eq!(lenient.specs.len(), 2, "good lines survive the bad ones");
        assert_eq!(lenient.rejected, 2, "bad lines are counted");

        // ... but a list with *no* good line is still an error.
        let hopeless_path = dir.join("hopeless.jsonl");
        std::fs::write(&hopeless_path, "{bad\n{worse\n").expect("write");
        let err =
            read_specs(hopeless_path.to_str().expect("utf8 path")).expect_err("all-bad lists fail");
        assert!(err.contains("all 2 spec lines"), "{err}");

        // A torn top-level array has no line boundaries to recover at.
        let torn_array = dir.join("torn.json");
        std::fs::write(&torn_array, format!("[{line},")).expect("write");
        assert!(read_specs(torn_array.to_str().expect("utf8 path")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_fleet_and_chaos() {
        let defaults = parse_args(args(&[])).expect("parses");
        assert_eq!(defaults.fleet, None);
        assert_eq!(defaults.chaos, None);
        let opts = parse_args(args(&["--fleet", "3", "--chaos", "7"])).expect("parses");
        assert_eq!(opts.fleet, Some(3));
        assert_eq!(opts.chaos, Some(7));
        assert!(parse_args(args(&["--fleet"])).is_err());
        assert!(parse_args(args(&["--fleet", "0"])).is_err());
        assert!(parse_args(args(&["--fleet", "many"])).is_err());
        assert!(
            parse_args(args(&["--chaos", "7"])).is_err(),
            "--chaos needs --fleet"
        );
        assert!(
            parse_args(args(&["--fleet", "2", "--shard", "0/2"])).is_err(),
            "--fleet and --shard do not compose"
        );
    }

    #[test]
    fn fleet_rejects_session_flags_it_cannot_honour() {
        // Silently dropping a session flag under --fleet would let the
        // same command report different bytes with and without the fleet;
        // every unsupported combination is an error instead.
        for bad in [
            &["--fleet", "2", "--cache"][..],
            &["--fleet", "2", "--cache-limit", "1024"][..],
            &["--fleet", "2", "--json-stream"][..],
            &["--fleet", "2", "--progress"][..],
        ] {
            assert!(parse_args(args(bad)).is_err(), "{bad:?} must be rejected");
        }
        // ... while --retries composes: it is forwarded to the workers.
        let opts = parse_args(args(&["--fleet", "2", "--retries", "3"])).expect("parses");
        assert_eq!(opts.fleet, Some(2));
        assert_eq!(opts.retries, 3);
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.2500");
    }
}
