//! Regenerates **Table 1**: test-suite results (pass / fail / skip) for the
//! FreeBSD-suite stand-in, the minidb `pg_regress` suite, and the
//! libc++-like subsuite, under the legacy mips64 ABI and CheriABI.
//!
//! All six suite×ABI batches run as one harness session, so `--cache`,
//! `--shard` and `--json-stream` see a single spec list with stable
//! submission indices — and `--fleet N` dispatches that same list through
//! the crash/hang-surviving fleet coordinator, aggregating the table from
//! byte-identically merged worker results.

use cheri_bench::cli::{self, json_escape};
use cheri_corpus::families::{freebsd_suite, libcxx_suite};
use cheri_corpus::minidb::pg_regress_suite;
use cheri_corpus::suite::{suite_from_reports, suite_specs};
use cheri_kernel::AbiMode;

fn main() {
    let opts = cli::parse_env();
    let suites: Vec<(&str, Vec<cheri_corpus::TestCase>)> = vec![
        ("FreeBSD", freebsd_suite()),
        ("PostgreSQL", pg_regress_suite()),
        ("libc++", libcxx_suite()),
    ];
    let mut specs = Vec::new();
    let mut batches = Vec::new();
    for (name, cases) in &suites {
        for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
            let batch = suite_specs(cases, abi);
            batches.push((*name, abi, specs.len()..specs.len() + batch.len()));
            specs.extend(batch);
        }
    }
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    if !opts.json {
        println!("Table 1: test suite results (this reproduction's corpus)");
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>7}",
            "suite", "pass", "fail", "skip", "total"
        );
    }
    for (name, abi, range) in batches {
        let r = suite_from_reports(&reports[range]);
        if opts.json {
            println!(
                "{{\"table\":\"table1\",\"suite\":\"{}\",\"abi\":\"{abi}\",\"pass\":{},\"fail\":{},\"skip\":{},\"total\":{}}}",
                json_escape(name),
                r.pass,
                r.fail,
                r.skip,
                r.total()
            );
        } else {
            println!(
                "{:<22} {:>6} {:>6} {:>6} {:>7}",
                format!("{name} {abi}"),
                r.pass,
                r.fail,
                r.skip,
                r.total()
            );
        }
    }
    if opts.json {
        return;
    }
    println!();
    println!("Paper (Table 1), for shape comparison:");
    println!("  FreeBSD    MIPS     3501 /  90 / 244 of 3835");
    println!("  FreeBSD    CheriABI 3301 / 122 / 246 of 3669");
    println!("  PostgreSQL MIPS      167 /   0 /   0 of  167");
    println!("  PostgreSQL CheriABI  150 /  16 /   1 of  167");
    println!("  libc++     MIPS     5338 /  29 / 789 of 6156");
    println!("  libc++     CheriABI 5333 /  34 / 789 of 6156");
    println!();
    println!(
        "note: the corpus is a scaled-down stand-in (see DESIGN.md); the\n\
         reproduced property is the *shape* — CheriABI passes the\n\
         overwhelming majority, failing only the seeded Table 2 idioms."
    );
}
