//! Loadable objects: the simulated equivalent of ELF executables and shared
//! libraries, consumed by the run-time linker.

use crate::{Assembler, Instr};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Index of a symbol within its object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SymbolId(pub usize);

/// What a symbol names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymKind {
    /// A function: instruction index of its entry point.
    Func {
        /// Index into the object's code of the first instruction.
        code_index: u32,
    },
    /// A writable data object at `offset` within the data segment
    /// (initialised template + BSS).
    Data {
        /// Offset within the object's data segment.
        offset: u64,
        /// Size in bytes.
        size: u64,
    },
}

/// A named, linkable entity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Link name.
    pub name: String,
    /// Location and kind.
    pub kind: SymKind,
}

/// One GOT slot: a by-name reference the run-time linker resolves to a
/// bounded capability (CheriABI) or an integer address (legacy ABI).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GotEntry {
    /// Name of the referenced symbol (searched across loaded objects).
    pub symbol: String,
}

/// A data-segment relocation: a pointer-sized slot at `offset` that must be
/// initialised to point at `symbol` during startup. Under CheriABI these
/// become capability initialisations performed by RTLD, "as tags are not
/// preserved on disk" (§4 "Dynamic linking").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataReloc {
    /// Offset of the pointer slot within the data segment.
    pub offset: u64,
    /// Target symbol name.
    pub symbol: String,
    /// Byte addend applied to the target address.
    pub addend: i64,
}

/// A program-wide global offset table shared by all objects of a program.
///
/// Real CheriABI gives each shared object its own capability GOT reached
/// through `$cgp`; our guest toolchain builds all of a program's objects
/// together, so the GOT namespace is merged at build time (slot indices are
/// consistent across objects) — the measured properties (slot offsets, CLC
/// immediate reach, per-symbol capability bounds) are identical. See
/// DESIGN.md §3.
#[derive(Debug, Default)]
pub struct GotTable {
    entries: Vec<GotEntry>,
    index: HashMap<String, usize>,
}

impl GotTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> GotTable {
        GotTable::default()
    }

    /// Returns the slot for `symbol`, allocating on first use.
    pub fn slot(&mut self, symbol: &str) -> usize {
        if let Some(&i) = self.index.get(symbol) {
            return i;
        }
        let i = self.entries.len();
        self.entries.push(GotEntry {
            symbol: symbol.to_string(),
        });
        self.index.insert(symbol.to_string(), i);
        i
    }

    /// The entries in slot order.
    #[must_use]
    pub fn entries(&self) -> &[GotEntry] {
        &self.entries
    }
}

/// A complete loadable object.
#[derive(Clone)]
pub struct Object {
    /// Object (library or executable) name.
    pub name: String,
    /// Code segment: decoded instructions, 4 virtual bytes each.
    pub code: Vec<Instr>,
    /// Initialised data template; the data segment is `data.len() +
    /// bss_size` bytes at load time.
    pub data: Vec<u8>,
    /// Zero-initialised space following the data template.
    pub bss_size: u64,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Global offset table entries.
    pub got: Vec<GotEntry>,
    /// Startup pointer initialisations.
    pub relocs: Vec<DataReloc>,
    /// Bytes of thread-local storage this object needs per thread.
    pub tls_size: u64,
    /// Name of the entry-point function, for executables.
    pub entry: Option<String>,
    /// Names of objects this one depends on (like `DT_NEEDED`).
    pub needed: Vec<String>,
}

impl fmt::Debug for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Object{{{} code={} data={}+{} syms={} got={}}}",
            self.name,
            self.code.len(),
            self.data.len(),
            self.bss_size,
            self.symbols.len(),
            self.got.len()
        )
    }
}

impl Object {
    /// Looks up a symbol by name.
    #[must_use]
    pub fn find_symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Total size of the data segment (template + BSS).
    #[must_use]
    pub fn data_segment_size(&self) -> u64 {
        self.data.len() as u64 + self.bss_size
    }
}

/// Incremental builder for an [`Object`].
///
/// Functions share a single instruction stream (so intra-object calls are
/// plain label jumps); data and BSS symbols are laid out with explicit
/// alignment (capability-holding slots must be 16-byte aligned — the
/// "pointer shape" compatibility category of Table 2).
pub struct ObjectBuilder {
    name: String,
    /// The shared assembler for all functions. Public so the codegen
    /// `FnBuilder` can borrow it together with GOT bookkeeping.
    pub asm: Assembler,
    data: Vec<u8>,
    bss_size: u64,
    tls_size: u64,
    symbols: Vec<Symbol>,
    got: Rc<RefCell<GotTable>>,
    relocs: Vec<DataReloc>,
    entry: Option<String>,
    needed: Vec<String>,
}

impl fmt::Debug for ObjectBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectBuilder({})", self.name)
    }
}

impl ObjectBuilder {
    /// Starts building an object called `name`.
    #[must_use]
    pub fn new(name: &str) -> ObjectBuilder {
        ObjectBuilder {
            name: name.to_string(),
            asm: Assembler::new(),
            data: Vec::new(),
            bss_size: 0,
            tls_size: 0,
            symbols: Vec::new(),
            got: Rc::new(RefCell::new(GotTable::new())),
            relocs: Vec::new(),
            entry: None,
            needed: Vec::new(),
        }
    }

    /// Declares a dependency on another object.
    pub fn needs(&mut self, dep: &str) {
        if !self.needed.iter().any(|n| n == dep) {
            self.needed.push(dep.to_string());
        }
    }

    /// Marks the current assembler position as the entry point of function
    /// `name` and registers the symbol.
    pub fn begin_function(&mut self, name: &str) -> SymbolId {
        let id = SymbolId(self.symbols.len());
        self.symbols.push(Symbol {
            name: name.to_string(),
            kind: SymKind::Func {
                code_index: self.asm.here(),
            },
        });
        id
    }

    /// Selects `name` as the executable's entry point.
    pub fn set_entry(&mut self, name: &str) {
        self.entry = Some(name.to_string());
    }

    fn align_data(&mut self, align: u64) -> u64 {
        assert!(self.bss_size == 0, "initialised data after BSS reservation");
        let a = align.max(1);
        while !(self.data.len() as u64).is_multiple_of(a) {
            self.data.push(0);
        }
        self.data.len() as u64
    }

    /// Adds an initialised data object, returning its segment offset.
    pub fn add_data(&mut self, name: &str, bytes: &[u8], align: u64) -> u64 {
        let offset = self.align_data(align);
        self.data.extend_from_slice(bytes);
        self.symbols.push(Symbol {
            name: name.to_string(),
            kind: SymKind::Data {
                offset,
                size: bytes.len() as u64,
            },
        });
        offset
    }

    /// Reserves zero-initialised space, returning its segment offset. All
    /// BSS reservations must come after initialised data.
    pub fn reserve_bss(&mut self, name: &str, size: u64, align: u64) -> u64 {
        let a = align.max(1);
        let mut off = self.data.len() as u64 + self.bss_size;
        off = off.div_ceil(a) * a;
        self.bss_size = off + size - self.data.len() as u64;
        self.symbols.push(Symbol {
            name: name.to_string(),
            kind: SymKind::Data { offset: off, size },
        });
        off
    }

    /// Returns the GOT slot index for `symbol`, allocating one on first use.
    pub fn got_slot(&mut self, symbol: &str) -> usize {
        self.got.borrow_mut().slot(symbol)
    }

    /// This object's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Uses `table` as the (program-wide) GOT namespace instead of a
    /// private one. Must be called before any slot is allocated.
    pub fn share_got(&mut self, table: Rc<RefCell<GotTable>>) {
        assert!(
            self.got.borrow().entries().is_empty(),
            "GOT already populated"
        );
        self.got = table;
    }

    /// Declares `size` bytes of per-thread TLS for this object.
    pub fn set_tls_size(&mut self, size: u64) {
        self.tls_size = size;
    }

    /// Records that the pointer-sized slot at data-segment `offset` must be
    /// initialised to `symbol + addend` at startup.
    pub fn add_data_reloc(&mut self, offset: u64, symbol: &str, addend: i64) {
        self.relocs.push(DataReloc {
            offset,
            symbol: symbol.to_string(),
            addend,
        });
    }

    /// Finalises the object, resolving all label fixups.
    ///
    /// # Panics
    ///
    /// Panics if any label used in a branch was never bound.
    #[must_use]
    pub fn finish(self) -> Object {
        Object {
            name: self.name,
            code: self.asm.finish(),
            data: self.data,
            bss_size: self.bss_size,
            tls_size: self.tls_size,
            symbols: self.symbols,
            got: self.got.borrow().entries().to_vec(),
            relocs: self.relocs,
            entry: self.entry,
            needed: self.needed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ireg;

    #[test]
    fn layout_and_symbols() {
        let mut b = ObjectBuilder::new("libtest");
        b.begin_function("f");
        b.asm.emit(Instr::Li {
            rd: ireg::V0,
            imm: 7,
        });
        let d0 = b.add_data("greeting", b"hello", 1);
        let d1 = b.add_data("table", &[1, 2, 3, 4], 16);
        let bss = b.reserve_bss("buf", 100, 16);
        let obj = b.finish();
        assert_eq!(d0, 0);
        assert_eq!(d1 % 16, 0);
        assert!(bss.is_multiple_of(16) && bss >= obj.data.len() as u64);
        assert_eq!(obj.data_segment_size(), bss + 100);
        match obj.find_symbol("f").unwrap().kind {
            SymKind::Func { code_index } => assert_eq!(code_index, 0),
            _ => panic!("wrong kind"),
        }
        match obj.find_symbol("table").unwrap().kind {
            SymKind::Data { size, .. } => assert_eq!(size, 4),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn got_slots_dedup() {
        let mut b = ObjectBuilder::new("x");
        assert_eq!(b.got_slot("malloc"), 0);
        assert_eq!(b.got_slot("free"), 1);
        assert_eq!(b.got_slot("malloc"), 0);
        assert_eq!(b.finish().got.len(), 2);
    }

    #[test]
    fn needed_dedups() {
        let mut b = ObjectBuilder::new("x");
        b.needs("libc");
        b.needs("libc");
        assert_eq!(b.finish().needed, vec!["libc".to_string()]);
    }
}
