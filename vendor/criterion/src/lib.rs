//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API that `cheri-bench` uses:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function` with a
//! [`Bencher`], the `criterion_group!`/`criterion_main!` macros, and the
//! custom-measurement API ([`Measurement`], [`Criterion::with_measurement`])
//! so benches can report a *deterministic* metric — guest cycles — as the
//! primary number with wall time as a secondary. Each benchmark runs
//! `sample_size` samples and prints the mean and min/max per iteration —
//! enough to track the *relative* cost of the DESIGN.md ablations, which is
//! all the real benches claim.

use std::time::{Duration, Instant};

/// How a benchmark iteration is measured. Mirrors criterion's trait of the
/// same name: `start`/`end` bracket one timed closure, `add`/`zero` fold
/// samples, `to_f64` renders for display.
pub trait Measurement {
    /// Value captured at the start of a measurement.
    type Intermediate;
    /// One sample's worth of measurement.
    type Value;

    /// Begins a measurement.
    fn start(&self) -> Self::Intermediate;
    /// Ends a measurement begun with [`Measurement::start`].
    fn end(&self, i: Self::Intermediate) -> Self::Value;
    /// Sums two sample values.
    fn add(&self, v1: &Self::Value, v2: &Self::Value) -> Self::Value;
    /// The additive identity.
    fn zero(&self) -> Self::Value;
    /// Renders a value for display/statistics.
    fn to_f64(&self, value: &Self::Value) -> f64;
    /// Unit label for display (`"s"` selects the classic wall-time format).
    fn unit(&self) -> &'static str;
}

/// The default measurement: host wall-clock time.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallTime;

impl Measurement for WallTime {
    type Intermediate = Instant;
    type Value = Duration;

    fn start(&self) -> Instant {
        Instant::now()
    }

    fn end(&self, i: Instant) -> Duration {
        i.elapsed()
    }

    fn add(&self, v1: &Duration, v2: &Duration) -> Duration {
        *v1 + *v2
    }

    fn zero(&self) -> Duration {
        Duration::ZERO
    }

    fn to_f64(&self, value: &Duration) -> f64 {
        value.as_secs_f64()
    }

    fn unit(&self) -> &'static str {
        "s"
    }
}

/// Benchmark driver, generic over how iterations are measured.
#[derive(Debug)]
pub struct Criterion<M: Measurement = WallTime> {
    measurement: M,
}

impl Default for Criterion<WallTime> {
    fn default() -> Self {
        Criterion {
            measurement: WallTime,
        }
    }
}

impl<M: Measurement> Criterion<M> {
    /// Replaces the measurement, keeping everything else.
    pub fn with_measurement<N: Measurement>(self, measurement: N) -> Criterion<N> {
        Criterion { measurement }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, M> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement: &self.measurement,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M: Measurement> {
    name: String,
    sample_size: usize,
    measurement: &'a M,
}

impl<M: Measurement> BenchmarkGroup<'_, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_, M>),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut wall_samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                measurement: self.measurement,
                value: self.measurement.zero(),
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if b.iterations > 0 {
                let per_iter = b.iterations as f64;
                samples.push(self.measurement.to_f64(&b.value) / per_iter);
                wall_samples.push(b.elapsed.as_secs_f64() / per_iter);
            }
        }
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.name);
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let wall_mean = wall_samples.iter().sum::<f64>() / wall_samples.len() as f64;
        if self.measurement.unit() == "s" {
            // The classic wall-time line, byte-compatible with the stub's
            // original output.
            println!(
                "  {}/{id}: mean {:.3} ms/iter (min {:.3}, max {:.3}, {} samples)",
                self.name,
                mean * 1e3,
                min * 1e3,
                max * 1e3,
                samples.len()
            );
        } else {
            // Custom measurement primary (deterministic), wall secondary.
            println!(
                "  {}/{id}: mean {:.0} {}/iter (min {:.0}, max {:.0}, {} samples; wall {:.3} ms/iter)",
                self.name,
                mean,
                self.measurement.unit(),
                min,
                max,
                samples.len(),
                wall_mean * 1e3
            );
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Measures the closure passed to [`Bencher::iter`] — once with the
/// group's [`Measurement`] and always with wall time as a secondary.
#[derive(Debug)]
pub struct Bencher<'a, M: Measurement = WallTime> {
    measurement: &'a M,
    value: M::Value,
    elapsed: Duration,
    iterations: u64,
}

impl<M: Measurement> Bencher<'_, M> {
    /// Measures one execution of `f` (called once per sample).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let m_start = self.measurement.start();
        let wall_start = Instant::now();
        let out = f();
        self.elapsed += wall_start.elapsed();
        let sample = self.measurement.end(m_start);
        self.value = self.measurement.add(&self.value, &sample);
        self.iterations += 1;
        drop(out);
    }
}

/// Declares a function running the listed benchmark functions in order.
/// The `name = ...; config = ...; targets = ...` form threads a configured
/// [`Criterion`] (e.g. with a custom measurement) into every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
