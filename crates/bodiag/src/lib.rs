//! # bodiagsuite — the buffer-overflow diagnostic suite (Table 3)
//!
//! The paper evaluates memory-protection benefit with "the BOdiagsuite
//! suite of 291 programs from Kratkiewicz": each case has a correct
//! variant plus three buggy ones — **min** (off by one byte), **med** (off
//! by eight bytes) and **large** (off by 4096 bytes) — run under plain
//! mips64, CheriABI, and AddressSanitizer.
//!
//! This crate generates an equivalent suite of exactly [`TOTAL_CASES`]
//! cases spanning the regions and access idioms of the original (stack
//! arrays, heap allocations, globals, read and write accesses, direct /
//! indexed / loop-induction address computation), including the
//! **intra-object** overflows that CheriABI deliberately does not catch
//! ("the current CheriABI design does not protect against this", §5.4) and
//! the global-adjacent overflows that AddressSanitizer misses (no redzones
//! between globals in our generator, matching ASan's object granularity).
//!
//! Detection criteria match the paper: a run "detects" the bug if the
//! process is stopped by the memory-safety machinery — a capability fault
//! (CheriABI), a sanitizer abort (ASan), or a hardware/VM fault (the only
//! way plain mips64 ever notices).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{AbiMode, ExitStatus};
use cheri_rtld::{Program, ProgramBuilder};
use cheriabi::guest::GuestOps;
use cheriabi::harness::{CaseOutcome, CaseReport, Harness, RunSpec};
use cheriabi::spec::{ProgramSpec, Registry};
use std::fmt;

/// Number of base test cases (paper: 291).
pub const TOTAL_CASES: usize = 291;

/// Memory region under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// A stack array (automatic storage).
    Stack,
    /// A heap allocation.
    Heap,
    /// A global (static storage) with valid globals on both sides.
    Global,
    /// An array *field* inside a heap-allocated struct with `tail` bytes of
    /// further fields/padding after it: overflow stays inside the object.
    IntraObject {
        /// Bytes of struct space after the array field.
        tail: u64,
    },
}

impl Region {
    /// Stable label used in [`ProgramSpec::Bodiag`] (the tail travels as a
    /// separate field).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Region::Stack => "stack",
            Region::Heap => "heap",
            Region::Global => "global",
            Region::IntraObject { .. } => "intra",
        }
    }

    /// The intra-object tail, `0` for every other region.
    #[must_use]
    pub fn tail(self) -> u64 {
        match self {
            Region::IntraObject { tail } => tail,
            _ => 0,
        }
    }

    /// Inverse of [`Region::label`] + [`Region::tail`].
    #[must_use]
    pub fn from_label(label: &str, tail: u64) -> Option<Region> {
        match label {
            "stack" => Some(Region::Stack),
            "heap" => Some(Region::Heap),
            "global" => Some(Region::Global),
            "intra" => Some(Region::IntraObject { tail }),
            _ => None,
        }
    }
}

/// Whether the overflowing access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessDir {
    /// Out-of-bounds read.
    Read,
    /// Out-of-bounds write.
    Write,
}

impl AccessDir {
    /// Stable label used in [`ProgramSpec::Bodiag`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AccessDir::Read => "read",
            AccessDir::Write => "write",
        }
    }

    /// Inverse of [`AccessDir::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<AccessDir> {
        match label {
            "read" => Some(AccessDir::Read),
            "write" => Some(AccessDir::Write),
            _ => None,
        }
    }
}

/// How the out-of-bounds address is formed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Idiom {
    /// Constant offset from the buffer base.
    DirectOffset,
    /// Index materialised in a register, pointer arithmetic.
    IndexReg,
    /// A loop walking the buffer one byte at a time, ending past it.
    LoopInduction,
}

impl Idiom {
    /// Stable label used in [`ProgramSpec::Bodiag`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Idiom::DirectOffset => "direct",
            Idiom::IndexReg => "index",
            Idiom::LoopInduction => "loop",
        }
    }

    /// Inverse of [`Idiom::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Idiom> {
        match label {
            "direct" => Some(Idiom::DirectOffset),
            "index" => Some(Idiom::IndexReg),
            "loop" => Some(Idiom::LoopInduction),
            _ => None,
        }
    }
}

/// The buggy-variant magnitudes of Table 3 (plus the correct baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// No memory-safety error.
    Ok,
    /// Smallest possible violation (one byte past the end).
    Min,
    /// Off by eight bytes.
    Med,
    /// Off by 4096 bytes.
    Large,
}

impl Variant {
    /// All four variants.
    pub const ALL: [Variant; 4] = [Variant::Ok, Variant::Min, Variant::Med, Variant::Large];

    /// The byte index accessed for a buffer of `len` bytes.
    #[must_use]
    pub fn target_index(self, len: u64) -> i64 {
        match self {
            Variant::Ok => len as i64 - 1,
            Variant::Min => len as i64,
            Variant::Med => len as i64 + 7,
            Variant::Large => len as i64 + 4095,
        }
    }

    /// Column label used in Table 3 (and in [`ProgramSpec::Bodiag`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Variant::Ok => "ok",
            Variant::Min => "min",
            Variant::Med => "med",
            Variant::Large => "large",
        }
    }

    /// Inverse of [`Variant::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.label() == label)
    }
}

/// One base case of the suite.
#[derive(Clone, Copy, Debug)]
pub struct CaseCfg {
    /// Case number (0-based).
    pub id: usize,
    /// Region.
    pub region: Region,
    /// Read or write.
    pub access: AccessDir,
    /// Address-formation idiom.
    pub idiom: Idiom,
    /// Buffer length in bytes.
    pub len: u64,
}

/// The full, deterministic suite of exactly [`TOTAL_CASES`] cases:
/// 180 stack, 96 heap, 3 global and 12 intra-object.
#[must_use]
pub fn all_cases() -> Vec<CaseCfg> {
    let mut cases = Vec::new();
    let mut id = 0;
    let mut push = |region, access, idiom, len| {
        cases.push(CaseCfg {
            id,
            region,
            access,
            idiom,
            len,
        });
        id += 1;
    };
    // 180 stack cases: 30 lengths x {read,write} x 3 idioms.
    let stack_lens: Vec<u64> = (0..30).map(|i| 8 + i * 9).collect();
    for &len in &stack_lens {
        for access in [AccessDir::Read, AccessDir::Write] {
            for idiom in [Idiom::DirectOffset, Idiom::IndexReg, Idiom::LoopInduction] {
                push(Region::Stack, access, idiom, len);
            }
        }
    }
    // 96 heap cases: 16 lengths x 2 x 3.
    let heap_lens: Vec<u64> = (0..16).map(|i| 12 + i * 21).collect();
    for &len in &heap_lens {
        for access in [AccessDir::Read, AccessDir::Write] {
            for idiom in [Idiom::DirectOffset, Idiom::IndexReg, Idiom::LoopInduction] {
                push(Region::Heap, access, idiom, len);
            }
        }
    }
    // 3 global cases (reads at three lengths).
    for len in [16u64, 40, 64] {
        push(Region::Global, AccessDir::Read, Idiom::DirectOffset, len);
    }
    // 12 intra-object cases. Struct sizes are multiples of 16 so the
    // allocator's padding adds nothing and the capability bounds equal the
    // struct exactly: 10 with a 7-byte tail (min stays inside, med lands
    // exactly at the struct end and escapes), 2 with a 23-byte tail (med
    // stays inside too — only `large` escapes).
    for i in 0..10u64 {
        push(
            Region::IntraObject { tail: 7 },
            if i % 2 == 0 {
                AccessDir::Read
            } else {
                AccessDir::Write
            },
            Idiom::DirectOffset,
            9 + i * 16,
        );
    }
    for i in 0..2u64 {
        push(
            Region::IntraObject { tail: 23 },
            AccessDir::Write,
            Idiom::DirectOffset,
            41 + i * 16,
        );
    }
    assert_eq!(cases.len(), TOTAL_CASES);
    cases
}

/// Emits the access of `dir` at byte `buf + idx` using `idiom`.
fn emit_access(f: &mut FnBuilder<'_>, buf: Ptr, idx: i64, dir: AccessDir, idiom: Idiom) {
    match idiom {
        Idiom::DirectOffset => match dir {
            AccessDir::Read => f.load(Val(0), buf, idx, Width::B, false),
            AccessDir::Write => {
                f.li(Val(0), 0x41);
                f.store(Val(0), buf, idx, Width::B);
            }
        },
        Idiom::IndexReg => {
            f.li(Val(1), idx);
            f.ptr_add(Ptr(6), buf, Val(1));
            match dir {
                AccessDir::Read => f.load(Val(0), Ptr(6), 0, Width::B, false),
                AccessDir::Write => {
                    f.li(Val(0), 0x42);
                    f.store(Val(0), Ptr(6), 0, Width::B);
                }
            }
        }
        Idiom::LoopInduction => {
            // for i in 0..=idx { touch(buf[i]) }
            f.li(Val(1), 0);
            let top = f.label();
            let done = f.label();
            f.bind(top);
            f.li(Val(2), idx + 1);
            f.sub(Val(3), Val(1), Val(2));
            f.beqz(Val(3), done);
            f.ptr_add(Ptr(6), buf, Val(1));
            match dir {
                AccessDir::Read => f.load(Val(0), Ptr(6), 0, Width::B, false),
                AccessDir::Write => {
                    f.li(Val(0), 0x43);
                    f.store(Val(0), Ptr(6), 0, Width::B);
                }
            }
            f.add_imm(Val(1), Val(1), 1);
            f.jmp(top);
            f.bind(done);
        }
    }
}

/// Builds the guest program for one case/variant.
#[must_use]
pub fn build_case(cfg: &CaseCfg, variant: Variant, opts: CodegenOpts) -> Program {
    let mut pb = ProgramBuilder::new("bodiag");
    let mut exe = pb.object("bodiag");
    if cfg.region == Region::Global {
        exe.add_data("pad_before", &[1u8; 64], 16);
        exe.add_data("gbuf", &vec![2u8; cfg.len as usize], 16);
        // Enough valid globals after the buffer that even +4096 lands on
        // mapped, unpoisoned, legitimate data.
        exe.add_data("pad_after", &[3u8; 8192], 16);
    }
    let cfg = *cfg;
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        let idx = variant.target_index(cfg.len);
        match cfg.region {
            Region::Stack => {
                // Frame: [16 .. 16+len) buffer, 8-byte redzone gaps, rest
                // of the frame stays live so in-frame overflow is silent on
                // mips64.
                let frame = ((cfg.len as i64 + 16 + 8 + 15) / 16) * 16 + 64;
                f.enter(frame);
                f.addr_of_stack(Ptr(0), 16, cfg.len);
                emit_access(&mut f, Ptr(0), idx, cfg.access, cfg.idiom);
            }
            Region::Heap => {
                // A preceding allocation keeps the buffer interior to the
                // arena chunk.
                f.malloc_imm(Ptr(1), 32);
                f.malloc_imm(Ptr(0), cfg.len as i64);
                // A following allocation gives min/med a silent landing
                // zone on mips64.
                f.malloc_imm(Ptr(2), 64);
                emit_access(&mut f, Ptr(0), idx, cfg.access, cfg.idiom);
            }
            Region::Global => {
                f.load_global_ptr(Ptr(0), "gbuf");
                emit_access(&mut f, Ptr(0), idx, cfg.access, cfg.idiom);
            }
            Region::IntraObject { tail } => {
                // struct { char field[len]; char rest[tail]; }
                f.malloc_imm(Ptr(1), 32);
                f.malloc_imm(Ptr(0), (cfg.len + tail) as i64);
                f.malloc_imm(Ptr(2), 64);
                emit_access(&mut f, Ptr(0), idx, cfg.access, cfg.idiom);
            }
        }
        f.sys_exit_imm(0);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// The three detector configurations of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Config {
    /// Plain legacy mips64.
    Mips64,
    /// CheriABI pure-capability.
    CheriAbi,
    /// mips64 with AddressSanitizer instrumentation.
    Asan,
}

impl Config {
    /// All configurations in Table 3 row order.
    pub const ALL: [Config; 3] = [Config::Mips64, Config::CheriAbi, Config::Asan];

    /// Row label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Config::Mips64 => "mips64",
            Config::CheriAbi => "cheriabi",
            Config::Asan => "asan",
        }
    }

    /// Codegen options for this configuration.
    #[must_use]
    pub fn codegen(self) -> CodegenOpts {
        match self {
            Config::Mips64 => CodegenOpts::mips64(),
            Config::CheriAbi => CodegenOpts::purecap(),
            Config::Asan => CodegenOpts::mips64_asan(),
        }
    }

    /// Process ABI for this configuration.
    #[must_use]
    pub fn abi(self) -> AbiMode {
        match self {
            Config::CheriAbi => AbiMode::CheriAbi,
            _ => AbiMode::Mips64,
        }
    }
}

/// Instruction budget per case run.
const CASE_BUDGET: u64 = 5_000_000;

/// The declarative identity of one case/variant: everything
/// [`build_case`] consumes, as plain data. (`CaseCfg::id` is a display
/// ordinal, not an input to the generator, so it is not part of the
/// identity.)
#[must_use]
pub fn program_spec(cfg: &CaseCfg, variant: Variant) -> ProgramSpec {
    ProgramSpec::Bodiag {
        region: cfg.region.label().to_string(),
        tail: cfg.region.tail(),
        access: cfg.access.label().to_string(),
        idiom: cfg.idiom.label().to_string(),
        len: cfg.len,
        variant: variant.label().to_string(),
    }
}

/// This crate's entry in the program registry: lowers
/// [`ProgramSpec::Bodiag`] back through the label parsers into
/// [`build_case`].
///
/// # Panics
///
/// Panics on an unparseable label — inside a harness worker this is
/// confined to the case's report.
#[must_use]
pub fn lower(spec: &ProgramSpec, opts: CodegenOpts, _seed: u64) -> Option<Program> {
    let ProgramSpec::Bodiag {
        region,
        tail,
        access,
        idiom,
        len,
        variant,
    } = spec
    else {
        return None;
    };
    let cfg = CaseCfg {
        id: 0,
        region: Region::from_label(region, *tail)
            .unwrap_or_else(|| panic!("bad bodiag region `{region}`")),
        access: AccessDir::from_label(access)
            .unwrap_or_else(|| panic!("bad bodiag access `{access}`")),
        idiom: Idiom::from_label(idiom).unwrap_or_else(|| panic!("bad bodiag idiom `{idiom}`")),
        len: *len,
    };
    let variant =
        Variant::from_label(variant).unwrap_or_else(|| panic!("bad bodiag variant `{variant}`"));
    Some(build_case(&cfg, variant, opts))
}

/// A registry sufficient for everything this crate lowers.
#[must_use]
pub fn registry() -> Registry {
    Registry::builtin().with(lower)
}

/// Lowers one case/variant/config into a harness spec.
#[must_use]
pub fn case_spec(cfg: &CaseCfg, variant: Variant, config: Config) -> RunSpec {
    RunSpec::new(
        format!("case{:03}-{}-{}", cfg.id, variant.label(), config.label()),
        program_spec(cfg, variant),
        config.codegen(),
        config.abi(),
    )
    .with_asan(config == Config::Asan)
    .with_budget(CASE_BUDGET)
}

/// Runs one case/variant under `config`; returns `(detected, status)`.
///
/// Every suite program is generated and must load; a load failure or panic
/// here is a bug in the generator, so this convenience wrapper panics on
/// those (the batched [`run_table3_jobs`] path records them instead).
#[must_use]
pub fn run_one(cfg: &CaseCfg, variant: Variant, config: Config) -> (bool, ExitStatus) {
    let report = cheriabi::harness::execute_spec(&registry(), &case_spec(cfg, variant, config));
    match report.outcome {
        CaseOutcome::Exited(status) => (status.is_safety_stop(), status),
        other => panic!("{}: {other}", report.name),
    }
}

/// Table 3 results: `detected[config][variant]` counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table3 {
    /// Counts per configuration, ordered as [`Config::ALL`] and
    /// `[min, med, large]`.
    pub detected: Vec<(Config, [usize; 3])>,
    /// Any Ok-variant run that did *not* exit cleanly (must be empty — the
    /// paper "verified that the variants without memory-safety errors ran
    /// correctly").
    pub false_positives: Vec<(usize, Config, ExitStatus)>,
    /// Runs that never produced an exit status (load failure or panic),
    /// with the case name and the error. Must be empty for a healthy suite;
    /// counted as "not detected" in [`Table3::detected`].
    pub errors: Vec<(String, String)>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<10} {:>6} {:>6} {:>6}", "", "min", "med", "large")?;
        for (config, counts) in &self.detected {
            writeln!(
                f,
                "{:<10} {:>6} {:>6} {:>6}",
                config.label(),
                counts[0],
                counts[1],
                counts[2]
            )?;
        }
        Ok(())
    }
}

/// The buggy variants in Table 3 column order.
const BUGGY: [Variant; 3] = [Variant::Min, Variant::Med, Variant::Large];

/// The complete Table 3 spec matrix, in the canonical nesting (config,
/// then case, then min/med/large/ok) — the input to
/// [`table3_from_reports`], and to the harness's caching / sharding /
/// streaming session modes in between.
#[must_use]
pub fn table3_specs(cases: &[CaseCfg]) -> Vec<RunSpec> {
    let mut specs = Vec::with_capacity(Config::ALL.len() * cases.len() * 4);
    for config in Config::ALL {
        for cfg in cases {
            for variant in BUGGY {
                specs.push(case_spec(cfg, variant, config));
            }
            specs.push(case_spec(cfg, Variant::Ok, config));
        }
    }
    specs
}

/// Tallies the reports of a [`table3_specs`] run (in spec order, for the
/// same `cases`) into the Table 3 aggregate.
///
/// # Panics
///
/// Panics if `reports` does not have one entry per spec of
/// `table3_specs(cases)`.
#[must_use]
pub fn table3_from_reports(cases: &[CaseCfg], reports: &[CaseReport]) -> Table3 {
    let mut table = Table3::default();
    let mut next = reports.iter();
    for config in Config::ALL {
        let mut counts = [0usize; 3];
        for cfg in cases {
            for count in &mut counts {
                let report = next.next().expect("one report per spec");
                match &report.outcome {
                    CaseOutcome::Exited(status) => {
                        if status.is_safety_stop() {
                            *count += 1;
                        }
                    }
                    other => table.errors.push((report.name.clone(), other.to_string())),
                }
            }
            let report = next.next().expect("one report per spec");
            match &report.outcome {
                CaseOutcome::Exited(ExitStatus::Code(0)) => {}
                CaseOutcome::Exited(status) => {
                    table.false_positives.push((cfg.id, config, *status));
                }
                other => table.errors.push((report.name.clone(), other.to_string())),
            }
        }
        table.detected.push((config, counts));
    }
    assert!(
        next.next().is_none(),
        "more reports than table3_specs produced"
    );
    table
}

/// Runs the complete suite (all cases, variants and configurations) across
/// `jobs` workers. The spec list — and therefore every count and the order
/// of `false_positives` — follows the sequential nesting (config, then
/// case, then min/med/large/ok) regardless of `jobs`.
#[must_use]
pub fn run_table3_jobs(cases: &[CaseCfg], jobs: usize) -> Table3 {
    let reports = Harness::new(jobs).run(&registry(), &table3_specs(cases));
    table3_from_reports(cases, &reports)
}

/// Runs the complete suite sequentially.
#[must_use]
pub fn run_table3(cases: &[CaseCfg]) -> Table3 {
    run_table3_jobs(cases, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::CapFault;
    use cheriabi::TrapCause;

    #[test]
    fn suite_has_exactly_291_cases() {
        let cases = all_cases();
        assert_eq!(cases.len(), TOTAL_CASES);
        assert_eq!(
            cases.iter().filter(|c| c.region == Region::Stack).count(),
            180
        );
        assert_eq!(
            cases.iter().filter(|c| c.region == Region::Heap).count(),
            96
        );
        assert_eq!(
            cases.iter().filter(|c| c.region == Region::Global).count(),
            3
        );
        assert_eq!(
            cases
                .iter()
                .filter(|c| matches!(c.region, Region::IntraObject { .. }))
                .count(),
            12
        );
    }

    #[test]
    fn ok_variants_pass_everywhere_sampled() {
        let cases = all_cases();
        for cfg in cases.iter().step_by(37) {
            for config in Config::ALL {
                let (_, status) = run_one(cfg, Variant::Ok, config);
                assert_eq!(status, ExitStatus::Code(0), "case {} {config:?}", cfg.id);
            }
        }
    }

    #[test]
    fn cheriabi_catches_min_stack_overflow() {
        let cfg = CaseCfg {
            id: 0,
            region: Region::Stack,
            access: AccessDir::Write,
            idiom: Idiom::DirectOffset,
            len: 32,
        };
        let (detected, status) = run_one(&cfg, Variant::Min, Config::CheriAbi);
        assert!(detected);
        assert_eq!(
            status,
            ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation))
        );
        let (detected_m, _) = run_one(&cfg, Variant::Min, Config::Mips64);
        assert!(!detected_m, "mips64 is silent at min");
    }

    #[test]
    fn asan_catches_heap_min_but_misses_global() {
        let heap = CaseCfg {
            id: 0,
            region: Region::Heap,
            access: AccessDir::Write,
            idiom: Idiom::DirectOffset,
            len: 33,
        };
        let (d, s) = run_one(&heap, Variant::Min, Config::Asan);
        assert!(d, "asan heap min: {s:?}");
        assert_eq!(s, ExitStatus::SanitizerAbort);
        let global = CaseCfg {
            id: 0,
            region: Region::Global,
            access: AccessDir::Read,
            idiom: Idiom::DirectOffset,
            len: 16,
        };
        let (d, _) = run_one(&global, Variant::Min, Config::Asan);
        assert!(!d, "no redzones between globals");
        let (d, _) = run_one(&global, Variant::Min, Config::CheriAbi);
        assert!(d, "cheriabi bounds globals per symbol");
    }

    #[test]
    fn intra_object_is_cheriabi_blind_spot() {
        let intra = CaseCfg {
            id: 0,
            region: Region::IntraObject { tail: 7 },
            access: AccessDir::Write,
            idiom: Idiom::DirectOffset,
            len: 25,
        };
        let (d_min, _) = run_one(&intra, Variant::Min, Config::CheriAbi);
        assert!(!d_min, "min stays inside the object");
        let (d_med, _) = run_one(&intra, Variant::Med, Config::CheriAbi);
        assert!(d_med, "med escapes a 7-byte tail");
        let deep = CaseCfg {
            region: Region::IntraObject { tail: 23 },
            len: 41,
            ..intra
        };
        let (d_med2, _) = run_one(&deep, Variant::Med, Config::CheriAbi);
        assert!(!d_med2, "med stays inside a 23-byte tail");
    }

    /// Table 3 aggregates — counts, false-positive order, error order —
    /// are bit-identical whether the matrix runs on one worker or eight.
    #[test]
    fn table3_is_identical_at_any_job_count() {
        let cases: Vec<CaseCfg> = all_cases().into_iter().step_by(13).collect();
        let seq = run_table3_jobs(&cases, 1);
        let par = run_table3_jobs(&cases, 8);
        assert_eq!(seq, par);
        assert_eq!(run_table3(&cases), par);
    }

    /// Running the Table 3 matrix as two shards and merging is identical —
    /// per-case reports and final aggregate both — to the unsharded run.
    #[test]
    fn two_shards_merge_to_the_unsharded_table3() {
        use cheriabi::harness::{merge_shards, SessionOpts, Shard};

        let cases: Vec<CaseCfg> = all_cases().into_iter().step_by(29).collect();
        let specs = table3_specs(&cases);
        let registry = registry();
        let full = Harness::new(4).run(&registry, &specs);
        let shards: Vec<_> = (0..2)
            .map(|index| {
                let opts = SessionOpts {
                    shard: Some(Shard { index, count: 2 }),
                    ..SessionOpts::default()
                };
                Harness::new(4)
                    .run_session(&registry, &specs, &opts)
                    .reports
            })
            .collect();
        let merged = merge_shards(shards);
        assert_eq!(merged.len(), full.len());
        for (i, (a, b)) in merged.iter().zip(&full).enumerate() {
            assert_eq!(
                a.to_json_deterministic(i).to_string(),
                b.to_json_deterministic(i).to_string(),
                "per-case JSON line {i} diverges"
            );
        }
        assert_eq!(
            table3_from_reports(&cases, &merged),
            table3_from_reports(&cases, &full)
        );
    }

    #[test]
    fn mips64_catches_large_stack_overflow() {
        let cfg = CaseCfg {
            id: 0,
            region: Region::Stack,
            access: AccessDir::Write,
            idiom: Idiom::DirectOffset,
            len: 64,
        };
        let (d, s) = run_one(&cfg, Variant::Large, Config::Mips64);
        assert!(d, "falls off the stack mapping: {s:?}");
    }
}
