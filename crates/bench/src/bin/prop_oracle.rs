//! Property-fuzz harness for the differential oracle: random instruction
//! sequences run under per-step lockstep against the reference semantics,
//! with two machine-checked properties on every retired instruction:
//!
//! * **oracle cleanliness** — the fast machine (decoded regions, TLB,
//!   re-entry cache) must never diverge from the reference interpreter;
//! * **capability monotonicity** — every *tagged* capability in the
//!   register file (including PCC and DDC) stays a subset of one of the
//!   machine's initial authority roots. Derivation can only narrow.
//!
//! Programs are drawn from a seeded strategy over a unit language (ALU
//! traffic, register-form `csetbounds` with lengths that sometimes exceed
//! the data capability, offset/address arithmetic, capability and scalar
//! loads/stores, forward branches, inspection ops, sealed-pair round
//! trips, and capability jumps). *Random* sealing would trap immediately
//! and drown the interesting traffic, so the `Sealed` unit is structured:
//! it seals through a dedicated sealer root (held in `$c6`, outside the
//! fuzzed registers) whose addressable range is all valid otypes, and
//! optionally unseals again — exercising otype match/mismatch on both
//! machines. `CapJump` derives a code capability from PCC (`cgetpcc` +
//! `csetaddr`) and transfers through `cjalr`/`cjr` to the start of a later
//! unit, forcing the fast path's decoded-region re-entry to agree with the
//! reference about mid-region entry points. Case 0 is always the
//! deterministic *widen probe* — narrow to 16 bytes, then ask for 64 — so
//! `--weaken-sem` (which disarms the fast path's bounds clamp) is
//! guaranteed at least one divergence regardless of the seed.
//!
//! On a failing case the strategy's shrinker (truncation, removal,
//! element-wise) minimises the unit sequence before reporting. Exits
//! non-zero iff any case fails, so CI runs it twice: once plain (must
//! pass) and once under `--weaken-sem` (must fail).
//!
//! Flags: `--cases N` (default 64), `--seed S` (default 0xC4E1), `--steps
//! N` per-case retirement budget (default 512), `--weaken-sem`, `--json`.

use cheri_cap::{CapFormat, CapSource, Capability, Perms, PrincipalId};
use cheri_cpu::{Cpu, Exit, RegFile};
use cheri_isa::{creg, ireg, Instr, Width};
use cheri_vm::{AsId, Backing, Prot, Vm};
use proptest::collection::{self, VecStrategy};
use proptest::{prop_oneof, BoxedStrategy, Strategy, TestRng};
use std::sync::Arc;

/// One generation unit: a short, self-contained burst of instructions.
/// Units (not raw instructions) are the shrink granularity, so removal
/// never strands a `csetbounds` without its length register.
#[derive(Clone, Debug)]
enum Unit {
    /// Load a small immediate into a temp.
    Li { rd: u8, imm: i64 },
    /// Three-register ALU op over the temps.
    Alu { op: u8, rd: u8, rs: u8, rt: u8 },
    /// Register-form `csetbounds` (the weaken hook's target): length is
    /// materialised into `$s0` first. Lengths range past the 4 KiB data
    /// capability, so narrowing, exact-rounding and trapping all occur.
    SetBounds {
        cd: u8,
        cb: u8,
        len: u64,
        exact: bool,
    },
    /// `cincoffset` by immediate (may wander out of bounds — dereference
    /// decides legality, not arithmetic).
    IncOffset { cd: u8, cb: u8, delta: i64 },
    /// `csetaddr` through `$s0`.
    SetAddr { cd: u8, cb: u8, addr: u64 },
    /// `candperm` through `$s0`.
    AndPerm { cd: u8, cb: u8, mask: u64 },
    /// `ccleartag` / `cmove` / `cfromptr`.
    Derive { op: u8, cd: u8, cb: u8, rs: u8 },
    /// Capability inspection (`cget*`, `ctestsubset`, `csub`).
    Inspect { op: u8, rd: u8, cb: u8, ct: u8 },
    /// Scalar load or store through a capability register.
    Mem {
        store: bool,
        r: u8,
        cb: u8,
        slot: u16,
        w: u8,
    },
    /// Capability load or store (CLC/CSC), 16-byte slots.
    CapMem {
        store: bool,
        ca: u8,
        cb: u8,
        slot: u8,
    },
    /// Forward conditional branch skipping up to `skip` following units.
    Branch { kind: u8, rs: u8, rt: u8, skip: u8 },
    /// Sealed-pair round trip through the sealer root (see [`sealer`]):
    /// point the sealer at `otype`, seal `cb` into `cd`, and (when
    /// `unseal` is set) unseal it back through the same otype. An unseal
    /// with `reseal_otype != otype` exercises the type-mismatch fault.
    Sealed {
        cd: u8,
        cb: u8,
        otype: u16,
        unseal: bool,
        reseal_otype: u16,
    },
    /// Capability control flow: derive a code capability from PCC, set
    /// its address to the start of a later unit (patched in [`flatten`],
    /// like [`Unit::Branch`] targets) and transfer through `cjalr`
    /// (linking into the next fuzzed capability register) or `cjr`.
    CapJump { link: bool, cd: u8, skip: u8 },
}

fn temp(r: u8) -> cheri_isa::IReg {
    ireg::temp(r % 4)
}

fn cap(r: u8) -> cheri_isa::CReg {
    creg::ptr(r % 6)
}

fn width(w: u8) -> Width {
    match w % 4 {
        0 => Width::B,
        1 => Width::H,
        2 => Width::W,
        _ => Width::D,
    }
}

/// Length register for materialised operands, outside the temp set so ALU
/// units never clobber a pending operand.
const LEN: cheri_isa::IReg = ireg::S0;

/// The sealer root's register: outside the six fuzzed capability
/// registers so derivation traffic never clobbers it; `Sealed` units
/// re-address it
/// in place (a `csetaddr` on a SEAL-bearing capability stays a subset of
/// itself, so the monotonicity invariant is undisturbed).
fn sealer() -> cheri_isa::CReg {
    creg::ptr(6)
}

impl Unit {
    /// Lowers the unit; branch targets get patched in [`flatten`].
    fn emit(&self, out: &mut Vec<Instr>) {
        match *self {
            Unit::Li { rd, imm } => out.push(Instr::Li { rd: temp(rd), imm }),
            Unit::Alu { op, rd, rs, rt } => {
                let (rd, rs, rt) = (temp(rd), temp(rs), temp(rt));
                out.push(match op % 8 {
                    0 => Instr::Add { rd, rs, rt },
                    1 => Instr::Sub { rd, rs, rt },
                    2 => Instr::Mul { rd, rs, rt },
                    3 => Instr::And { rd, rs, rt },
                    4 => Instr::Or { rd, rs, rt },
                    5 => Instr::Xor { rd, rs, rt },
                    6 => Instr::Sltu { rd, rs, rt },
                    _ => Instr::Srlv { rd, rs, rt },
                });
            }
            Unit::SetBounds { cd, cb, len, exact } => {
                out.push(Instr::Li {
                    rd: LEN,
                    imm: i64::try_from(len).expect("bounded length"),
                });
                out.push(if exact {
                    Instr::CSetBoundsExact {
                        cd: cap(cd),
                        cb: cap(cb),
                        rs: LEN,
                    }
                } else {
                    Instr::CSetBounds {
                        cd: cap(cd),
                        cb: cap(cb),
                        rs: LEN,
                    }
                });
            }
            Unit::IncOffset { cd, cb, delta } => out.push(Instr::CIncOffsetImm {
                cd: cap(cd),
                cb: cap(cb),
                imm: delta,
            }),
            Unit::SetAddr { cd, cb, addr } => {
                out.push(Instr::Li {
                    rd: LEN,
                    imm: i64::try_from(addr).expect("bounded address"),
                });
                out.push(Instr::CSetAddr {
                    cd: cap(cd),
                    cb: cap(cb),
                    rs: LEN,
                });
            }
            Unit::AndPerm { cd, cb, mask } => {
                out.push(Instr::Li {
                    rd: LEN,
                    imm: i64::from(mask as u32),
                });
                out.push(Instr::CAndPerm {
                    cd: cap(cd),
                    cb: cap(cb),
                    rs: LEN,
                });
            }
            Unit::Derive { op, cd, cb, rs } => out.push(match op % 3 {
                0 => Instr::CClearTag {
                    cd: cap(cd),
                    cb: cap(cb),
                },
                1 => Instr::CMove {
                    cd: cap(cd),
                    cb: cap(cb),
                },
                _ => Instr::CFromPtr {
                    cd: cap(cd),
                    cb: cap(cb),
                    rs: temp(rs),
                },
            }),
            Unit::Inspect { op, rd, cb, ct } => out.push(match op % 9 {
                0 => Instr::CGetAddr {
                    rd: temp(rd),
                    cb: cap(cb),
                },
                1 => Instr::CGetBase {
                    rd: temp(rd),
                    cb: cap(cb),
                },
                2 => Instr::CGetLen {
                    rd: temp(rd),
                    cb: cap(cb),
                },
                3 => Instr::CGetPerm {
                    rd: temp(rd),
                    cb: cap(cb),
                },
                4 => Instr::CGetTag {
                    rd: temp(rd),
                    cb: cap(cb),
                },
                5 => Instr::CGetOffset {
                    rd: temp(rd),
                    cb: cap(cb),
                },
                6 => Instr::CTestSubset {
                    rd: temp(rd),
                    cb: cap(cb),
                    ct: cap(ct),
                },
                7 => Instr::CSub {
                    rd: temp(rd),
                    cb: cap(cb),
                    ct: cap(ct),
                },
                _ => Instr::CGetPcc { cd: cap(ct) },
            }),
            Unit::Mem {
                store,
                r,
                cb,
                slot,
                w,
            } => {
                let w = width(w);
                let off = i32::from(slot % 512) * 8;
                if store {
                    out.push(Instr::CStore {
                        rs: temp(r),
                        cb: cap(cb),
                        off,
                        w,
                    });
                } else {
                    out.push(Instr::CLoad {
                        rd: temp(r),
                        cb: cap(cb),
                        off,
                        w,
                        signed: false,
                    });
                }
            }
            Unit::CapMem {
                store,
                ca,
                cb,
                slot,
            } => {
                let off = i32::from(slot % 255) * 16;
                if store {
                    out.push(Instr::Csc {
                        cs: cap(ca),
                        cb: cap(cb),
                        off,
                    });
                } else {
                    out.push(Instr::Clc {
                        cd: cap(ca),
                        cb: cap(cb),
                        off,
                    });
                }
            }
            Unit::Branch {
                kind,
                rs,
                rt,
                skip: _,
            } => {
                // Target 0 is a placeholder; flatten() patches it to a
                // forward instruction index.
                let (rs, rt) = (temp(rs), temp(rt));
                out.push(match kind % 4 {
                    0 => Instr::Beq { rs, rt, target: 0 },
                    1 => Instr::Bne { rs, rt, target: 0 },
                    2 => Instr::Blez { rs, target: 0 },
                    _ => Instr::Bgtz { rs, target: 0 },
                });
            }
            Unit::Sealed {
                cd,
                cb,
                otype,
                unseal,
                reseal_otype,
            } => {
                out.push(Instr::Li {
                    rd: LEN,
                    imm: i64::from(otype),
                });
                out.push(Instr::CSetAddr {
                    cd: sealer(),
                    cb: sealer(),
                    rs: LEN,
                });
                out.push(Instr::CSeal {
                    cd: cap(cd),
                    cs: cap(cb),
                    ct: sealer(),
                });
                if unseal {
                    // Usually the matching otype (a clean round trip);
                    // sometimes a mismatch, which must fault identically
                    // on both machines.
                    out.push(Instr::Li {
                        rd: LEN,
                        imm: i64::from(reseal_otype),
                    });
                    out.push(Instr::CSetAddr {
                        cd: sealer(),
                        cb: sealer(),
                        rs: LEN,
                    });
                    out.push(Instr::CUnseal {
                        cd: cap(cd),
                        cs: cap(cd),
                        ct: sealer(),
                    });
                }
            }
            Unit::CapJump { link, cd, skip: _ } => {
                // The Li immediate 0 is a placeholder; flatten() patches
                // it to the absolute address of a later unit's start.
                out.push(Instr::CGetPcc { cd: cap(cd) });
                out.push(Instr::Li { rd: LEN, imm: 0 });
                out.push(Instr::CSetAddr {
                    cd: cap(cd),
                    cb: cap(cd),
                    rs: LEN,
                });
                if link {
                    out.push(Instr::CJalr {
                        cd: cap(cd.wrapping_add(1)),
                        cb: cap(cd),
                    });
                } else {
                    out.push(Instr::CJr { cb: cap(cd) });
                }
            }
        }
    }
}

/// Base address the fuzz program is mapped at (see [`machine`]).
const CODE_BASE: u64 = 0x10000;

/// Lowers a unit sequence to a program: units in order, branch targets
/// resolved to the start of a later unit (or the terminating `syscall`),
/// capability-jump addresses materialised the same way (as absolute
/// addresses rather than instruction indices), and a `syscall` appended
/// so clean runs exit the step loop.
fn flatten(units: &[Unit]) -> Vec<Instr> {
    let mut starts = Vec::with_capacity(units.len());
    let mut code = Vec::new();
    let mut branches = Vec::new();
    let mut jumps = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        starts.push(code.len());
        match unit {
            Unit::Branch { skip, .. } => branches.push((code.len(), i, *skip)),
            // The placeholder Li is the unit's second instruction.
            Unit::CapJump { skip, .. } => jumps.push((code.len() + 1, i, *skip)),
            _ => {}
        }
        unit.emit(&mut code);
    }
    let end = u32::try_from(code.len()).expect("short program");
    let resolve = |i: usize, skip: u8| -> u32 {
        let dest = i + 1 + usize::from(skip % 4);
        starts
            .get(dest)
            .map_or(end, |&s| u32::try_from(s).expect("short program"))
    };
    for (at, i, skip) in branches {
        let target = resolve(i, skip);
        match &mut code[at] {
            Instr::Beq { target: t, .. }
            | Instr::Bne { target: t, .. }
            | Instr::Blez { target: t, .. }
            | Instr::Bgtz { target: t, .. } => *t = target,
            other => unreachable!("branch unit emitted {other:?}"),
        }
    }
    for (at, i, skip) in jumps {
        let addr = CODE_BASE + u64::from(resolve(i, skip)) * 4;
        match &mut code[at] {
            Instr::Li { rd: _, imm } => *imm = i64::try_from(addr).expect("short program"),
            other => unreachable!("capjump unit emitted {other:?}"),
        }
    }
    code.push(Instr::Syscall);
    code
}

/// The unit strategy. Weights come from repetition inside `prop_oneof!`:
/// capability derivation and memory traffic dominate, because that is
/// where the fast path has machinery (regions, TLB, store verification)
/// to disagree with the reference.
fn unit_strategy() -> BoxedStrategy<Unit> {
    prop_oneof![
        (0u8..4, -256i64..256).prop_map(|(rd, imm)| Unit::Li { rd, imm }),
        (0u8..8, 0u8..4, 0u8..4, 0u8..4).prop_map(|(op, rd, rs, rt)| Unit::Alu { op, rd, rs, rt }),
        // Register-form csetbounds: twice the weight, lengths up to 2x the
        // 4 KiB data capability so both clamping and trapping paths run.
        (0u8..6, 0u8..6, 0u64..8192, proptest::any::<bool>())
            .prop_map(|(cd, cb, len, exact)| Unit::SetBounds { cd, cb, len, exact }),
        (0u8..6, 0u8..6, 0u64..4096, Just(false))
            .prop_map(|(cd, cb, len, exact)| Unit::SetBounds { cd, cb, len, exact }),
        (0u8..6, 0u8..6, -64i64..4160).prop_map(|(cd, cb, delta)| Unit::IncOffset {
            cd,
            cb,
            delta
        }),
        (0u8..6, 0u8..6, 0x1F000u64..0x22000).prop_map(|(cd, cb, addr)| Unit::SetAddr {
            cd,
            cb,
            addr
        }),
        (0u8..6, 0u8..6, 0u64..0x1_0000).prop_map(|(cd, cb, mask)| Unit::AndPerm { cd, cb, mask }),
        (0u8..3, 0u8..6, 0u8..6, 0u8..4).prop_map(|(op, cd, cb, rs)| Unit::Derive {
            op,
            cd,
            cb,
            rs
        }),
        (0u8..9, 0u8..4, 0u8..6, 0u8..6).prop_map(|(op, rd, cb, ct)| Unit::Inspect {
            op,
            rd,
            cb,
            ct
        }),
        (proptest::any::<bool>(), 0u8..4, 0u8..6, 0u16..512, 0u8..4).prop_map(
            |(store, r, cb, slot, w)| Unit::Mem {
                store,
                r,
                cb,
                slot,
                w
            }
        ),
        (proptest::any::<bool>(), 0u8..4, 0u8..6, 0u16..512, 0u8..4).prop_map(
            |(store, r, cb, slot, w)| Unit::Mem {
                store,
                r,
                cb,
                slot,
                w
            }
        ),
        (proptest::any::<bool>(), 0u8..6, 0u8..6, 0u8..255).prop_map(|(store, ca, cb, slot)| {
            Unit::CapMem {
                store,
                ca,
                cb,
                slot,
            }
        }),
        (0u8..4, 0u8..4, 0u8..4, 0u8..4).prop_map(|(kind, rs, rt, skip)| Unit::Branch {
            kind,
            rs,
            rt,
            skip
        }),
        // Sealed pairs: mostly matching round trips (reseal_otype ==
        // otype would always match, so draw both and let collisions
        // produce the clean path and misses the type fault).
        (0u8..6, 0u8..6, 0u16..64, proptest::any::<bool>(), 0u16..64).prop_map(
            |(cd, cb, otype, unseal, reseal_otype)| Unit::Sealed {
                cd,
                cb,
                otype,
                unseal,
                reseal_otype: if reseal_otype % 2 == 0 {
                    otype
                } else {
                    reseal_otype
                },
            }
        ),
        (proptest::any::<bool>(), 0u8..6, 0u8..4).prop_map(|(link, cd, skip)| Unit::CapJump {
            link,
            cd,
            skip
        }),
    ]
    .boxed()
}

use proptest::Just;

fn program_strategy() -> VecStrategy<BoxedStrategy<Unit>> {
    collection::vec(unit_strategy(), 1..24)
}

/// The deterministic widen probe (always case 0): narrow `$c14` to 16
/// bytes, then derive a 64-byte capability from it. Correct semantics
/// trap on the second `csetbounds`; `--weaken-sem` silently widens, which
/// both the lockstep oracle and the monotonicity invariant must catch.
fn widen_probe() -> Vec<Unit> {
    vec![
        Unit::SetBounds {
            cd: 1,
            cb: 0,
            len: 16,
            exact: false,
        },
        Unit::SetBounds {
            cd: 2,
            cb: 1,
            len: 64,
            exact: false,
        },
    ]
}

/// Builds the fuzz machine: code at 0x10000 under a 4 KiB executable PCC,
/// one 4 KiB rw data page at 0x20000 held by `$c13`, purecap (NULL DDC)
/// or hybrid (full DDC) by flag — mirroring the cpu crate's test machine.
fn machine(code: Vec<Instr>, purecap: bool) -> (Cpu, Vm, AsId, RegFile) {
    let mut vm = Vm::new(128);
    let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
    let text: Vec<u8> = (0..u32::try_from(code.len()).expect("short program"))
        .flat_map(u32::to_le_bytes)
        .collect();
    vm.map(
        id,
        Some(0x10000),
        (code.len() as u64 * 4).max(4096),
        Prot::rx(),
        Backing::Image {
            data: Arc::new(text),
            offset: 0,
        },
        "text",
    )
    .expect("map text");
    vm.map(id, Some(0x20000), 4096, Prot::rw(), Backing::Zero, "data")
        .expect("map data");
    let mut cpu = Cpu::new();
    cpu.register_code(id, 0x10000, Arc::new(code));
    let mut rf = RegFile::new(CapFormat::C128);
    let root = vm.space(id).root;
    rf.pcc = root
        .with_addr(0x10000)
        .set_bounds(0x1000, false)
        .expect("pcc bounds")
        .and_perms(Perms::user_code());
    rf.pc = 0x10000;
    rf.ddc = if purecap {
        Capability::null(CapFormat::C128)
    } else {
        root.with_source(CapSource::Exec)
    };
    rf.wc(
        creg::ptr(0),
        root.with_addr(0x20000)
            .set_bounds(4096, true)
            .expect("data cap"),
    );
    // The sealer root: SEAL/UNSEAL authority over a small otype range,
    // held outside the six fuzzed registers (see `SEALER`).
    rf.wc(
        sealer(),
        root.with_addr(0)
            .set_bounds(4096, true)
            .expect("sealer cap")
            .and_perms(Perms::SEAL | Perms::UNSEAL),
    );
    (cpu, vm, id, rf)
}

/// Runs one unit sequence under the per-step oracle. Returns a failure
/// description if either property broke, `None` on a clean run (clean
/// includes guest traps: a capability fault both machines agree on is
/// the architecture working).
fn run_case(units: &[Unit], purecap: bool, weaken: bool, steps: u64) -> Option<String> {
    let (mut cpu, mut vm, id, mut rf) = machine(flatten(units), purecap);
    cpu.set_weaken_sem(weaken);
    cpu.set_lockstep(1, true);
    // Everything a correct run can ever hold must stay inside these.
    let mut authority = vec![rf.pcc, rf.c(creg::ptr(0)), rf.c(sealer())];
    if rf.ddc.tag() {
        authority.push(rf.ddc);
    }
    loop {
        let before = cpu.stats.instret;
        let exit = cpu.run(&mut vm, id, &mut rf, 1);
        if let Some(d) = cpu.take_divergence() {
            return Some(format!("oracle: {d}"));
        }
        let caps = rf.caps.iter().skip(1).chain([&rf.pcc, &rf.ddc]).enumerate();
        for (i, c) in caps {
            if c.tag() && !c.is_sealed() && !authority.iter().any(|a| c.is_subset_of(a)) {
                return Some(format!(
                    "monotonicity: slot {i} holds a tagged capability outside every \
                     authority root: {c:?}"
                ));
            }
        }
        match exit {
            Exit::InstrLimit if cpu.stats.instret > before => {}
            Exit::Syscall | Exit::Break | Exit::Trap(_) | Exit::InstrLimit => return None,
        }
        if cpu.stats.instret >= steps {
            return None;
        }
    }
}

/// Shrinks a failing unit sequence to a local minimum: repeatedly adopt
/// the first strictly-smaller candidate that still fails, bounded by a
/// candidate-evaluation budget so pathological cases terminate.
fn shrink_failure(
    mut units: Vec<Unit>,
    mut detail: String,
    purecap: bool,
    weaken: bool,
    steps: u64,
) -> (Vec<Unit>, String) {
    let strategy = program_strategy();
    let mut budget = 256u32;
    'outer: while budget > 0 {
        for cand in strategy.shrink(&units) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Some(d) = run_case(&cand, purecap, weaken, steps) {
                units = cand;
                detail = d;
                continue 'outer;
            }
        }
        break;
    }
    (units, detail)
}

struct Opts {
    cases: u64,
    seed: u64,
    steps: u64,
    weaken: bool,
    json: bool,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut opts = Opts {
        cases: 64,
        seed: 0xC4E1,
        steps: 512,
        weaken: false,
        json: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut num = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("{name} needs a number"))
        };
        match arg.as_str() {
            "--cases" => opts.cases = num("--cases")?,
            "--seed" => opts.seed = num("--seed")?,
            "--steps" => opts.steps = num("--steps")?.max(1),
            "--weaken-sem" => opts.weaken = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                println!(
                    "prop_oracle: property-fuzz the differential oracle\n  \
                     --cases N      generated cases (default 64; case 0 is the widen probe)\n  \
                     --seed S       base RNG seed (default 0xC4E1)\n  \
                     --steps N      per-case retirement budget (default 512)\n  \
                     --weaken-sem   self-test: disarm the csetbounds clamp; the run must fail\n  \
                     --json         machine-readable summary line"
                );
                std::process::exit(0);
            }
            other => return Err(format!("prop_oracle: unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let strategy = program_strategy();
    let mut failures = 0u64;
    for case in 0..opts.cases {
        // Alternate ABIs so both the NULL-DDC and full-DDC legacy paths
        // see traffic; case 0 is the deterministic widen probe.
        let purecap = case % 2 == 0;
        let units = if case == 0 {
            widen_probe()
        } else {
            strategy.generate(&mut TestRng::new(opts.seed.wrapping_add(case)))
        };
        let Some(detail) = run_case(&units, purecap, opts.weaken, opts.steps) else {
            continue;
        };
        failures += 1;
        let (min, detail) = shrink_failure(units, detail, purecap, opts.weaken, opts.steps);
        eprintln!(
            "prop_oracle: case #{case} ({}) FAILED: {detail}\n  minimal sequence ({} units): {min:?}",
            if purecap { "purecap" } else { "hybrid" },
            min.len(),
        );
    }
    if opts.json {
        println!(
            "{{\"campaign\":\"prop_oracle\",\"cases\":{},\"seed\":{},\"weaken_sem\":{},\"failures\":{failures}}}",
            opts.cases, opts.seed, opts.weaken
        );
    } else {
        println!(
            "prop_oracle: {} cases (seed {:#x}{}) — {failures} failure(s)",
            opts.cases,
            opts.seed,
            if opts.weaken { ", weakened" } else { "" }
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
