//! # cheri-vm — virtual memory: address spaces, paging, COW and swap
//!
//! The paper's central implementation challenge (§3) is that CHERI
//! capabilities are expressed in terms of *virtual* addresses, and thus only
//! have meaning relative to a specific virtual-to-physical mapping that the
//! OS changes constantly. This crate owns those mappings and maintains the
//! invariants that make the **abstract capability** model sound:
//!
//! * every address space belongs to one freshly-allocated principal, and its
//!   pages map physical frames disjoint from every other principal's (except
//!   deliberate sharing: read-only, shared memory and copy-on-write);
//! * copy-on-write resolution copies pages **with tags**
//!   ([`cheri_mem::PhysMem::copy_frame_with_tags`]), so fork preserves
//!   abstract capabilities;
//! * swap-out scans pages for tags and saves capabilities *untagged* in the
//!   swap metadata; swap-in **rederives** each one from the owning address
//!   space's root capability ([`cheri_cap::Capability::rederive`]) — the
//!   paper's Figure 2 mechanism that preserves the abstract capability
//!   across a broken architectural chain.
//!
//! The CPU accesses guest memory exclusively through [`Vm`] accessors that
//! translate, fault and page in on demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod space;
#[allow(clippy::module_inception)]
mod vm;

pub use space::{AddressSpace, AsId, Backing, Mapping, PageState, Prot, USER_TOP};
pub use vm::{Access, SwapFaultSpec, SwapFaults, Vm, VmError, VmStats};
