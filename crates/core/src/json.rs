//! A minimal JSON value with a canonical writer and a strict parser.
//!
//! The harness needs to round-trip [`crate::harness::RunSpec`]s and
//! [`crate::harness::CaseReport`]s through text — for the on-disk report
//! cache, for `--json-stream` lines, and for shipping spec lists to remote
//! shards — without pulling a serialization framework into the build. The
//! value model is deliberately small: every quantity the harness stores is
//! an integer, a string, a bool, or a composite of those, so floats are
//! rejected outright and the writer has exactly one encoding per value
//! (field order is preserved, strings are minimally escaped). That makes
//! "byte-identical" a meaningful contract: equal values produce equal
//! bytes.

use std::fmt;

/// A parsed or buildable JSON value (no floats — see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (wide enough for `u64` and `u128` nanosecond spans).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is the canonical order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// `Int` from any unsigned quantity the harness stores.
    #[must_use]
    pub fn u64(v: u64) -> Json {
        Json::Int(i128::from(v))
    }

    /// `Int` from a signed quantity.
    #[must_use]
    pub fn i64(v: i64) -> Json {
        Json::Int(i128::from(v))
    }

    /// `Str` from anything stringy.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `value` or `null`.
    #[must_use]
    pub fn opt(v: Option<Json>) -> Json {
        v.unwrap_or(Json::Null)
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The field, or an error naming it (for decoder use).
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// This value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Int(i) => u64::try_from(*i).map_err(|_| format!("{i} out of u64 range")),
            other => Err(format!("expected integer, got {other}")),
        }
    }

    /// This value as an `i64`.
    pub fn as_i64(&self) -> Result<i64, String> {
        match self {
            Json::Int(i) => i64::try_from(*i).map_err(|_| format!("{i} out of i64 range")),
            other => Err(format!("expected integer, got {other}")),
        }
    }

    /// This value as a `u128`.
    pub fn as_u128(&self) -> Result<u128, String> {
        match self {
            Json::Int(i) => u128::try_from(*i).map_err(|_| format!("{i} out of u128 range")),
            other => Err(format!("expected integer, got {other}")),
        }
    }

    /// This value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, String> {
        usize::try_from(self.as_u64()?).map_err(|e| e.to_string())
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other}")),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other}")),
        }
    }

    /// `None` for `null`, otherwise `Some(map(self))`.
    pub fn as_opt<T>(
        &self,
        map: impl FnOnce(&Json) -> Result<T, String>,
    ) -> Result<Option<T>, String> {
        match self {
            Json::Null => Ok(None),
            other => map(other).map(Some),
        }
    }
}

/// Escapes `s` into `out` as a JSON string literal body.
fn escape_into(s: &str, out: &mut String) {
    use fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Str(s) => {
                let mut body = String::with_capacity(s.len());
                escape_into(s, &mut body);
                write!(f, "\"{body}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len());
                    escape_into(k, &mut key);
                    write!(f, "\"{key}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, floats and
/// any trailing garbage rejected).
///
/// # Errors
///
/// Returns a message describing the first syntax problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_int(bytes, pos),
        Some(other) => Err(format!(
            "unexpected byte `{}` at offset {pos}",
            *other as char
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!("floats are not supported (offset {start})"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    text.parse::<i128>()
        .map(Json::Int)
        .map_err(|e| format!("bad integer `{text}`: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are trustworthy).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// 64-bit FNV-1a over `bytes` — the stable content hash used for cache
/// keys (Rust's `DefaultHasher` is explicitly unstable across releases, so
/// an on-disk cache cannot use it).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_composites() {
        let v = Json::obj(vec![
            ("name", Json::str("a\"b\\c\nd\ttab")),
            ("n", Json::Int(-42)),
            ("big", Json::u64(u64::MAX)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "list",
                Json::Arr(vec![Json::Int(1), Json::str("x"), Json::Null]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse("\"a\\u0041\\n\\t\\\\ λ\"").expect("parses");
        assert_eq!(v, Json::str("aA\n\t\\ λ"));
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vectors; the cache key format depends on these.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }
}
